// GIGA+ incremental directory splitting: bitmap math, registry split/
// merge mechanics, stale-client redirects, dead-node dentry routing, and
// the notify/heartbeat-generation resync protocol.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/fault_plan.h"
#include "test_util.h"

namespace mdsim {
namespace {

// ---------------------------------------------------------------------------
// Pure bitmap math.

TEST(GigaBitmap, PartitionWalksDownToExisting) {
  // Only partition 0: everything maps there.
  for (std::uint64_t h = 0; h < 64; ++h) {
    EXPECT_EQ(giga_partition(h, 1, 6), 0u);
  }
  // {0,1}: the low hash bit decides.
  EXPECT_EQ(giga_partition(0b1000, 0b11, 6), 0u);
  EXPECT_EQ(giga_partition(0b1001, 0b11, 6), 1u);
  // {0,1,3}: suffix 3 (mod 4) owns its own partition; suffix 2 falls
  // back to 0; suffix 1 stays at 1.
  EXPECT_EQ(giga_partition(7, 0b1011, 6), 3u);
  EXPECT_EQ(giga_partition(2, 0b1011, 6), 0u);
  EXPECT_EQ(giga_partition(5, 0b1011, 6), 1u);
}

TEST(GigaBitmap, DepthTracksSplits) {
  EXPECT_EQ(giga_depth_of(0b1, 0, 6), 0);
  EXPECT_EQ(giga_depth_of(0b11, 0, 6), 1);
  EXPECT_EQ(giga_depth_of(0b11, 1, 6), 1);
  // {0,1,2}: partition 0 split twice, 1 and 2 once each (birth depth).
  EXPECT_EQ(giga_depth_of(0b111, 0, 6), 2);
  EXPECT_EQ(giga_depth_of(0b111, 1, 6), 1);
  EXPECT_EQ(giga_depth_of(0b111, 2, 6), 2);
}

TEST(GigaBitmap, LargerMaxDepthConverges) {
  // As long as every existing partition index fits in the smaller depth,
  // walking from a deeper suffix lands on the same partition — which is
  // why clients can simply share the registry's max_depth.
  for (std::uint64_t h = 0; h < 4096; ++h) {
    EXPECT_EQ(giga_partition(h, 0b1011, 6), giga_partition(h, 0b1011, 3));
    EXPECT_EQ(giga_partition(h, 0b111, 6), giga_partition(h, 0b111, 2));
  }
}

TEST(GigaBitmap, NodePlacementRoundRobinFromHome) {
  EXPECT_EQ(giga_node(2, 0, 3), 2);
  EXPECT_EQ(giga_node(2, 1, 3), 0);
  EXPECT_EQ(giga_node(2, 2, 3), 1);
  EXPECT_EQ(giga_node(0, 5, 3), 2);
}

// ---------------------------------------------------------------------------
// Registry transitions.

TEST(GigaRegistry, SplitMovesOnlyOnePartitionsShare) {
  DirFragRegistry reg(4, 6);
  reg.fragment(42, /*home=*/1, /*giga=*/true, /*by_size=*/false,
               /*child_count=*/100, /*seed_temp=*/5.0, /*now=*/0,
               /*half_life=*/kSecond);
  ASSERT_TRUE(reg.is_fragmented(42));
  const auto* g = reg.find(42);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->bitmap, 1u);
  // Giga fragmentation itself re-routes nothing.
  EXPECT_EQ(reg.max_event_moved, 0u);

  reg.split(42, 0, /*parent_count=*/60, /*child_count=*/40, 0);
  EXPECT_EQ(reg.find(42)->bitmap, 0b11u);
  EXPECT_EQ(reg.split_events, 1u);
  // The split moved the 40 entries whose suffix bit flipped — never the
  // whole directory.
  EXPECT_EQ(reg.max_event_moved, 40u);

  // Partition 1 folds back into 0; its 40 entries come home.
  reg.merge_pair(42, 0, 1, 0);
  EXPECT_EQ(reg.find(42)->bitmap, 1u);
  EXPECT_EQ(reg.pair_merge_events, 1u);
  EXPECT_EQ(reg.total_event_moved, 80u);

  // With everything merged back to the home partition, dropping the
  // entry moves nothing more.
  reg.unfragment(42);
  EXPECT_FALSE(reg.is_fragmented(42));
  EXPECT_EQ(reg.merge_events, 1u);
  EXPECT_EQ(reg.total_event_moved, 80u);
}

TEST(GigaRegistry, GenerationAdvancesAndChangesSinceCoversDepartures) {
  DirFragRegistry reg(4, 6);
  EXPECT_EQ(reg.generation(), 0u);
  reg.fragment(7, 0, /*giga=*/true, false, 0, 0.0, 0, kSecond);
  const std::uint64_t g1 = reg.generation();
  EXPECT_GT(g1, 0u);
  EXPECT_TRUE(reg.changed_ever(7));
  reg.unfragment(7);
  EXPECT_GT(reg.generation(), g1);
  // The change log survives the entry itself: a peer that lags must
  // still re-scan a directory that has since been unhashed.
  EXPECT_TRUE(reg.changed_ever(7));
  const auto since = reg.changes_since(g1);
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0], 7u);
  EXPECT_TRUE(reg.changes_since(reg.generation()).empty());
}

TEST(GigaRegistry, DentryAuthorityRoutesAroundDeadNodes) {
  DirFragRegistry reg(4, 6);
  // Legacy hashing over all nodes must skip a node known dead instead of
  // routing dentries into a black hole.
  reg.set_node_alive(2, false);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(reg.dentry_authority(42, "e" + std::to_string(i)), 2);
  }
  // Giga partition placement probes past the dead node too.
  reg.fragment(42, /*home=*/2, /*giga=*/true, false, 10, 0.0, 0, kSecond);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(reg.dentry_authority(42, "e" + std::to_string(i)), 2);
  }
  // Back alive: the original hash placement returns and spreads.
  reg.set_node_alive(2, true);
  reg.unfragment(42);
  std::set<MdsId> seen;
  for (int i = 0; i < 400; ++i) {
    seen.insert(reg.dentry_authority(42, "e" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 4u);
}

// ---------------------------------------------------------------------------
// Cluster behavior.

class GigaTest : public ::testing::Test {
 protected:
  void run_for(ClusterSim& c, SimTime dt) { c.run_until(c.sim().now() + dt); }

  /// Drive `n` creates into `dir`, routing each by the converged dentry
  /// authority (as a bitmap-fresh client would), 1 ms apart.
  int storm(ClusterSim& cluster, TestClient& client, FsNode* dir,
            const std::string& prefix, int n) {
    int sent = 0;
    for (int i = 0; i < n; ++i) {
      const std::string name = prefix + std::to_string(i);
      MdsId to = cluster.mds(0).authority_for(dir);
      if (cluster.dirfrag().is_fragmented(dir->ino())) {
        to = cluster.dirfrag().dentry_authority(dir->ino(), name);
      }
      client.send(to, OpType::kCreate, dir, name);
      ++sent;
      run_for(cluster, kMillisecond);
    }
    return sent;
  }
};

TEST_F(GigaTest, IncrementalSplitStormNeverMovesWholeDirectory) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.dirfrag_temp_threshold = 10.0;
  cfg.mds.popularity_half_life = kSecond;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[0];

  const int sent = storm(cluster, client, dir, "giga", 200);
  run_for(cluster, 100 * kMillisecond);

  ASSERT_TRUE(cluster.dirfrag().is_fragmented(dir->ino()));
  const auto* g = cluster.dirfrag().find(dir->ino());
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->giga);
  // The storm drove real incremental splits…
  EXPECT_GE(cluster.dirfrag().split_events, 1u);
  EXPECT_NE(g->bitmap, 1u);
  // …and no single event re-routed more than one partition's dentries,
  // let alone the whole directory (the all-at-once failure mode).
  EXPECT_GT(cluster.dirfrag().max_event_moved, 0u);
  EXPECT_LT(cluster.dirfrag().max_event_moved, dir->child_count());

  // Dentry authorities scatter across several nodes.
  std::set<MdsId> auths;
  for (const auto& [_, c] : dir->children()) {
    auths.insert(cluster.mds(0).authority_for(c.get()));
  }
  EXPECT_GT(auths.size(), 1u);

  // Every create succeeded despite the bitmap changing mid-storm.
  int ok = 0;
  for (const auto& r : client.replies) ok += r.success ? 1 : 0;
  EXPECT_EQ(ok, sent);

  // Storm over: pair merges reverse the splits one at a time, then the
  // directory unhashes entirely.
  run_for(cluster, 60 * kSecond);
  EXPECT_FALSE(cluster.dirfrag().is_fragmented(dir->ino()));
  EXPECT_GE(cluster.dirfrag().pair_merge_events, 1u);
  EXPECT_GE(cluster.dirfrag().merge_events, 1u);
}

TEST_F(GigaTest, MisroutedDentryOpDrawsRedirectAndStillSucceeds) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.dirfrag_temp_threshold = 10.0;
  cfg.mds.popularity_half_life = kSecond;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[0];

  storm(cluster, client, dir, "pre", 120);
  run_for(cluster, 100 * kMillisecond);
  const auto* g = cluster.dirfrag().find(dir->ino());
  ASSERT_NE(g, nullptr);
  ASSERT_NE(g->bitmap, 1u);

  // Find a name whose partition does NOT live at the home node, then
  // send the create to home anyway — a stale-bitmap client's mistake.
  const MdsId home = g->home;
  std::string misrouted;
  for (int i = 0; i < 64; ++i) {
    const std::string name = "stale" + std::to_string(i);
    if (cluster.dirfrag().dentry_authority(dir->ino(), name) != home) {
      misrouted = name;
      break;
    }
  }
  ASSERT_FALSE(misrouted.empty());

  const std::uint64_t before = cluster.mds(home).stats().giga_redirects_sent;
  const std::uint64_t req =
      client.send(home, OpType::kCreate, dir, misrouted);
  run_for(cluster, 200 * kMillisecond);
  // The mis-routed op was corrected (redirect sent) AND forwarded to
  // completion — stale clients lose no operations.
  EXPECT_GT(cluster.mds(home).stats().giga_redirects_sent, before);
  const ClientReplyMsg* reply = client.reply_for(req);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->success);
  EXPECT_GT(reply->hops, 0u);
}

TEST_F(GigaTest, CrashedNodeWhileFragmentedIsRoutedAround) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.dirfrag_temp_threshold = 10.0;
  cfg.mds.popularity_half_life = kSecond;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[0];

  storm(cluster, client, dir, "chaos", 120);
  run_for(cluster, 100 * kMillisecond);
  ASSERT_TRUE(cluster.dirfrag().is_fragmented(dir->ino()));

  // Crash a partition-owning node that is not the directory's subtree
  // authority; survivors detect it from missed heartbeats.
  const MdsId auth = cluster.mds(0).authority_for(dir);
  const MdsId victim = static_cast<MdsId>((auth + 1) % cluster.num_mds());
  cluster.fail_mds(victim, /*warm_takeover=*/true);
  run_for(cluster, 6 * kSecond);

  EXPECT_FALSE(cluster.dirfrag().node_alive(victim));
  if (cluster.dirfrag().is_fragmented(dir->ino())) {
    // Dentry routing never points at the dead node…
    for (int i = 0; i < 100; ++i) {
      EXPECT_NE(
          cluster.dirfrag().dentry_authority(dir->ino(),
                                             "after" + std::to_string(i)),
          victim);
    }
    // …and creates routed by it keep succeeding through the outage.
    const std::size_t replies_before = client.replies.size();
    int sent = 0;
    for (int i = 0; i < 20; ++i) {
      const std::string name = "after" + std::to_string(i);
      client.send(cluster.dirfrag().dentry_authority(dir->ino(), name),
                  OpType::kCreate, dir, name);
      ++sent;
      run_for(cluster, kMillisecond);
    }
    run_for(cluster, kSecond);
    int ok = 0;
    for (std::size_t i = replies_before; i < client.replies.size(); ++i) {
      ok += client.replies[i].success ? 1 : 0;
    }
    EXPECT_EQ(ok, sent);
  }

  // Recovery: heartbeats resume and the liveness mask heals.
  cluster.recover_mds(victim);
  run_for(cluster, 6 * kSecond);
  EXPECT_TRUE(cluster.dirfrag().node_alive(victim));
}

TEST_F(GigaTest, DroppedNotifiesHealViaHeartbeatGeneration) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.dirfrag_temp_threshold = 10.0;
  cfg.mds.popularity_half_life = kSecond;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[0];
  cluster.run_until(0);  // build, so authority_for below is valid
  const MdsId auth = cluster.mds(0).authority_for(dir);
  const MdsId peer = static_cast<MdsId>((auth + 1) % cluster.num_mds());

  // Isolate `peer` from both other nodes for 2 s (below the 3-miss
  // failure-detection threshold): every DirFragNotify broadcast during
  // the window is lost on the floor.
  LinkFault drop_all;
  drop_all.drop = 1.0;
  FaultPlan plan;
  for (int other = 0; other < cluster.num_mds(); ++other) {
    if (other == peer) continue;
    plan.flaky_link(kMillisecond, 2 * kSecond, peer, other, drop_all);
  }
  plan.arm(cluster);
  run_for(cluster, 2 * kMillisecond);

  storm(cluster, client, dir, "lost", 60);
  ASSERT_TRUE(cluster.dirfrag().is_fragmented(dir->ino()));
  ASSERT_GT(cluster.dirfrag().generation(), 0u);
  // Inside the window the isolated peer has seen nothing.
  EXPECT_EQ(cluster.mds(peer).dirfrag_seen_gen(), 0u);

  // Link healed: the next heartbeat carries the registry generation and
  // the lagging peer re-syncs in one sweep.
  run_for(cluster, 4 * kSecond);
  EXPECT_GE(cluster.mds(peer).stats().dirfrag_resyncs, 1u);
  EXPECT_EQ(cluster.mds(peer).dirfrag_seen_gen(),
            cluster.dirfrag().generation());
}

TEST_F(GigaTest, NotifyForUnknownInodeIsIgnored) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);

  auto msg = std::make_unique<DirFragNotifyMsg>();
  msg->dir = 999999999;  // no such inode anywhere
  msg->fragmented = true;
  msg->bitmap = 0b11;
  msg->gen = 12;
  cluster.network().send(client.addr(), 1, std::move(msg));
  run_for(cluster, 100 * kMillisecond);
  // Nothing to assert beyond "did not crash / did not invent state".
  EXPECT_EQ(cluster.dirfrag().fragmented_count(), 0u);
}

TEST_F(GigaTest, OscillatingTemperatureDoesNotFlap) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.dirfrag_temp_threshold = 10.0;
  cfg.mds.popularity_half_life = 2 * kSecond;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[0];

  // Four bursts with 1.5 s of quiet between them: the hysteresis floor
  // (threshold × 0.25) holds the fragmentation through the gaps instead
  // of unhashing and re-hashing per burst.
  for (int burst = 0; burst < 4; ++burst) {
    storm(cluster, client, dir, "b" + std::to_string(burst) + "_", 15);
    run_for(cluster, 1500 * kMillisecond);
  }
  EXPECT_TRUE(cluster.dirfrag().is_fragmented(dir->ino()));
  EXPECT_EQ(cluster.dirfrag().fragment_events, 1u);
  EXPECT_EQ(cluster.dirfrag().merge_events, 0u);

  // A real lull does consolidate — exactly once.
  run_for(cluster, 60 * kSecond);
  EXPECT_FALSE(cluster.dirfrag().is_fragmented(dir->ino()));
  EXPECT_EQ(cluster.dirfrag().fragment_events, 1u);
  EXPECT_EQ(cluster.dirfrag().merge_events, 1u);
}

TEST_F(GigaTest, CooledBigDirectoryEventuallyMerges) {
  // Regression for the legacy merge condition: a directory fragmented by
  // *size* kept its children forever, so a size term in the cooled test
  // made the fragmentation permanent. Cooling is about temperature only.
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.giga_enabled = false;  // the all-at-once path
  cfg.mds.dirfrag_size_threshold = 20;
  cfg.mds.dirfrag_temp_threshold = 40.0;
  cfg.mds.popularity_half_life = kSecond;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[1];

  storm(cluster, client, dir, "big", 25);
  run_for(cluster, 100 * kMillisecond);
  ASSERT_TRUE(cluster.dirfrag().is_fragmented(dir->ino()));
  const auto* g = cluster.dirfrag().find(dir->ino());
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->giga);
  EXPECT_TRUE(g->by_size);
  EXPECT_GE(dir->child_count(), cfg.mds.dirfrag_size_threshold);

  // The directory is still over the size threshold — children do not
  // evaporate — but once the traffic is gone it must unhash anyway.
  run_for(cluster, 60 * kSecond);
  EXPECT_FALSE(cluster.dirfrag().is_fragmented(dir->ino()));
  EXPECT_GE(cluster.dirfrag().merge_events, 1u);
  EXPECT_GE(dir->child_count(), cfg.mds.dirfrag_size_threshold);
}

TEST_F(GigaTest, DropForeignDentriesKeepsPinnedAndAnchoringEntries) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);

  // Find a directory with a grandchild-bearing subdirectory plus two
  // plain children that will hash AWAY from the authority once the
  // directory legacy-fragments.
  FsNode* dir = nullptr;
  FsNode* subdir = nullptr;      // anchors a cached grandchild -> kept
  FsNode* pinned_child = nullptr;    // pinned -> kept
  FsNode* plain_child = nullptr;     // unpinned, childless -> dropped
  MdsId auth = kInvalidMds;
  for (FsNode* d : cluster.namespace_info().user_roots) {
    auth = cluster.mds(0).authority_for(d);
    subdir = pinned_child = plain_child = nullptr;
    for (const auto& [name, c] : d->children()) {
      const MdsId frag_auth = static_cast<MdsId>(
          giga_name_hash(d->ino(), name) %
          static_cast<std::uint64_t>(cluster.num_mds()));
      if (frag_auth == auth) continue;  // stays local: uninteresting
      if (c->is_dir() && c->child_count() > 0 && subdir == nullptr) {
        subdir = c.get();
      } else if (pinned_child == nullptr) {
        pinned_child = c.get();
      } else if (plain_child == nullptr) {
        plain_child = c.get();
      }
    }
    if (subdir != nullptr && pinned_child != nullptr &&
        plain_child != nullptr) {
      dir = d;
      break;
    }
  }
  ASSERT_NE(dir, nullptr);

  // Warm the authority's cache via real requests, so the entries carry
  // proper prefix anchoring.
  FsNode* grandchild = subdir->children_list().front();
  client.send(auth, OpType::kStat, grandchild, "", nullptr,
              grandchild->inode().perms.uid);
  client.send(auth, OpType::kStat, pinned_child, "", nullptr,
              pinned_child->inode().perms.uid);
  client.send(auth, OpType::kStat, plain_child, "", nullptr,
              plain_child->inode().perms.uid);
  run_for(cluster, kSecond);
  MetadataCache& cache = cluster.mds(auth).cache();
  ASSERT_NE(cache.peek(subdir->ino()), nullptr);
  ASSERT_NE(cache.peek(pinned_child->ino()), nullptr);
  ASSERT_NE(cache.peek(plain_child->ino()), nullptr);
  cache.pin(cache.peek(pinned_child->ino()));

  // Legacy-fragment the directory out from under the cached entries and
  // sweep: only the droppable foreigner goes.
  cluster.dirfrag().fragment(dir->ino(), auth, /*giga=*/false,
                             /*by_size=*/false, dir->child_count(), 0.0,
                             cluster.sim().now(), kSecond);
  cluster.mds(auth).drop_foreign_dentries_probe(dir);

  EXPECT_EQ(cache.peek(plain_child->ino()), nullptr);
  EXPECT_NE(cache.peek(pinned_child->ino()), nullptr);
  EXPECT_NE(cache.peek(subdir->ino()), nullptr);

  cache.unpin(cache.peek(pinned_child->ino()));
}

TEST_F(GigaTest, FetchCostReadsOwnShardOnly) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[0];
  // Grow the directory until its btree spans several nodes (the default
  // dirfrag thresholds are far above this, so it stays unfragmented).
  storm(cluster, client, dir, "bulk", 400);
  ASSERT_FALSE(cluster.dirfrag().is_fragmented(dir->ino()));
  FsNode* child = dir->children_list().front();
  const InodeId ino = dir->ino();
  const MdsId home = cluster.mds(0).authority_for(dir);
  const MdsId other = static_cast<MdsId>((home + 1) % cluster.num_mds());
  const SimTime now = cluster.sim().now();

  // Unfragmented: a whole-directory fetch everywhere.
  const std::uint32_t full = cluster.mds(home).fetch_cost_probe(child);
  ASSERT_GE(full, 3u);  // need headroom for the sharded assertions below
  EXPECT_EQ(cluster.mds(other).fetch_cost_probe(child), full);

  // Legacy hash: the historical even 1/num_mds split, exactly.
  cluster.dirfrag().fragment(ino, home, /*giga=*/false, false,
                             dir->child_count(), 0.0, now, kSecond);
  const std::uint32_t even = std::max<std::uint32_t>(
      1, full / static_cast<std::uint32_t>(cluster.num_mds()));
  EXPECT_EQ(cluster.mds(home).fetch_cost_probe(child), even);
  EXPECT_EQ(cluster.mds(other).fetch_cost_probe(child), even);
  cluster.dirfrag().unfragment(ino);

  // Giga, freshly fragmented (bitmap=1): every dentry still lives at
  // home — home pays the full fetch, everyone else the 1-node floor.
  cluster.dirfrag().fragment(ino, home, /*giga=*/true, false,
                             dir->child_count(), 0.0, now, kSecond);
  EXPECT_EQ(cluster.mds(home).fetch_cost_probe(child), full);
  EXPECT_EQ(cluster.mds(other).fetch_cost_probe(child), 1u);

  // After a split the cost follows the exact per-node dentry share.
  const std::uint64_t total = dir->child_count();
  cluster.dirfrag().split(ino, 0, total - total / 3, total / 3, now);
  const std::uint32_t at_home = cluster.mds(home).fetch_cost_probe(child);
  const std::uint32_t at_other = cluster.mds(other).fetch_cost_probe(child);
  EXPECT_LT(at_home, full);
  EXPECT_LT(at_other, full);
  EXPECT_GT(at_home, at_other);  // home kept the larger share
  EXPECT_EQ(at_home,
            std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(
                       static_cast<double>(full) *
                       cluster.dirfrag().shard_fraction(ino, home))));
  cluster.dirfrag().unfragment(ino);
}

}  // namespace
}  // namespace mdsim

// Gray-failure layer: fail-slow injection primitives (service-rate
// multipliers on the CPU/disk queue servers, sustained link degrades),
// the FaultPlan window that drives them, health-based detection opening
// and closing GrayIncidents in the FaultLog, and the zero-cost-off
// contract (health + hedging armed but inert is byte-identical to a run
// without the layer — the same configuration the benches' --gray-noop
// gate uses).
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <tuple>
#include <vector>

#include "core/fault_plan.h"
#include "sim/queue_server.h"
#include "storage/disk_model.h"
#include "test_util.h"

namespace mdsim {
namespace {

// --- injection primitives -------------------------------------------------

TEST(FailSlow, QueueServerMultiplierScalesServiceAtSubmission) {
  Simulation sim;
  QueueServer q(sim, "q");

  // Nominal job, then a 4x job behind it: multipliers apply when the job
  // is submitted, so the queued nominal job is unaffected.
  SimTime done_a = 0, done_b = 0, done_c = 0;
  q.submit(kMillisecond, [&]() { done_a = sim.now(); });
  q.set_service_time_multiplier(4.0);
  EXPECT_EQ(q.service_time_multiplier(), 4.0);
  q.submit(kMillisecond, [&]() { done_b = sim.now(); });
  q.set_service_time_multiplier(1.0);  // restore: the 4x job keeps its time
  q.submit(kMillisecond, [&]() { done_c = sim.now(); });
  sim.run_until(kSecond);

  EXPECT_EQ(done_a, kMillisecond);
  EXPECT_EQ(done_b, 5 * kMillisecond);   // 1 ms queued + 4 ms service
  EXPECT_EQ(done_c, 6 * kMillisecond);   // back to nominal
}

TEST(FailSlow, DiskMultiplierScalesStoreAndJournal) {
  Simulation sim;
  DiskParams dp;
  DiskModel disk(sim, dp, "d");

  SimTime read_done = 0, append_done = 0;
  disk.set_service_time_multiplier(5.0);
  EXPECT_EQ(disk.service_time_multiplier(), 5.0);
  disk.read_object(1, [&]() { read_done = sim.now(); });
  disk.journal_append([&]() { append_done = sim.now(); });
  sim.run_until(kSecond);

  // The serialized portion scales; the store's fixed access latency (the
  // controller/bus hop outside the device) does not.
  EXPECT_EQ(read_done, dp.access_latency + 5 * dp.transaction_time);
  EXPECT_EQ(append_done, 5 * dp.journal_append_time);

  disk.set_service_time_multiplier(1.0);
  SimTime nominal_done = 0;
  const SimTime t0 = sim.now();
  disk.journal_append([&]() { nominal_done = sim.now(); });
  sim.run_until(2 * kSecond);
  EXPECT_EQ(nominal_done - t0, dp.journal_append_time);
}

struct Sink final : NetEndpoint {
  std::vector<SimTime> arrivals;
  Simulation* sim = nullptr;
  void on_message(NetAddr, MessagePtr) override {
    arrivals.push_back(sim->now());
  }
};

MessagePtr ping() { return std::make_unique<ClientReplyMsg>(); }

TEST(LinkDegrade, InflatesLatencyBothWaysAndDropsAtLossOne) {
  Simulation sim;
  NetworkParams np;
  np.base_latency = from_micros(100);
  np.jitter_mean = 0;
  Network net(sim, np);
  Sink a, b;
  a.sim = &sim;
  b.sim = &sim;
  const NetAddr na = net.attach(&a);
  const NetAddr nb = net.attach(&b);

  net.send(na, nb, ping());
  sim.run_until(kMillisecond);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0], np.base_latency);

  LinkDegrade d;
  d.latency_factor = 3.0;
  d.extra_latency = kMillisecond;
  net.set_link_degrade(na, nb, d);
  SimTime t0 = sim.now();
  net.send(na, nb, ping());
  net.send(nb, na, ping());  // symmetric: the reverse direction pays too
  sim.run_until(t0 + 10 * kMillisecond);
  ASSERT_EQ(b.arrivals.size(), 2u);
  ASSERT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[1] - t0, 3 * np.base_latency + kMillisecond);
  EXPECT_EQ(a.arrivals[0] - t0, 3 * np.base_latency + kMillisecond);

  // loss = 1.0: every message on the link disappears, attributed to the
  // degrade counter (not the transient-fault counter).
  d.loss = 1.0;
  net.set_link_degrade(na, nb, d);
  net.send(na, nb, ping());
  net.send(na, nb, ping());
  sim.run_until(sim.now() + 10 * kMillisecond);
  EXPECT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(net.fault_counters().degrade_dropped, 2u);
  EXPECT_EQ(net.fault_counters().dropped, 0u);

  net.clear_link_degrade(na, nb);
  t0 = sim.now();
  net.send(na, nb, ping());
  sim.run_until(t0 + 10 * kMillisecond);
  ASSERT_EQ(b.arrivals.size(), 3u);
  EXPECT_EQ(b.arrivals[2] - t0, np.base_latency);
}

// --- FaultPlan windows ----------------------------------------------------

SimConfig small_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 4;
  cfg.num_clients = 160;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 32;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 26 * kSecond;
  cfg.warmup = 2 * kSecond;
  return cfg;
}

TEST(FailSlow, PlanWindowAppliesAndRevertsTheMultipliers) {
  SimConfig cfg = small_config(7);
  cfg.num_clients = 20;  // load is irrelevant here
  ClusterSim cluster(cfg);
  cluster.run_until(0);

  FaultPlan plan;
  plan.fail_slow(kSecond, 2 * kSecond, /*node=*/1, /*cpu=*/3.0, /*disk=*/5.0);
  plan.arm(cluster);

  cluster.run_until(kSecond + kSecond / 2);
  EXPECT_EQ(cluster.mds(1).cpu().service_time_multiplier(), 3.0);
  EXPECT_EQ(cluster.mds(1).disk().service_time_multiplier(), 5.0);
  EXPECT_EQ(cluster.mds(0).cpu().service_time_multiplier(), 1.0);
  EXPECT_EQ(cluster.mds(2).disk().service_time_multiplier(), 1.0);
  // The node is degraded, not dead: it still serves and heartbeats.
  EXPECT_FALSE(cluster.mds(1).failed());

  cluster.run_until(2 * kSecond + kSecond / 2);
  EXPECT_EQ(cluster.mds(1).cpu().service_time_multiplier(), 1.0);
  EXPECT_EQ(cluster.mds(1).disk().service_time_multiplier(), 1.0);

  // Injection ground truth was logged with the window's exact bounds.
  const auto& fs = cluster.fault_log().fail_slow_incidents();
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].node, 1);
  EXPECT_EQ(fs[0].began_at, kSecond);
  EXPECT_EQ(fs[0].cleared_at, 2 * kSecond);
  EXPECT_FALSE(fs[0].open);
}

// --- detection ------------------------------------------------------------

TEST(GrayDetection, FailSlowWindowOpensAndClosesAnIncident) {
  SimConfig cfg = small_config(42);
  cfg.mds.health.enabled = true;
  cfg.mds.cache_capacity = 1200;  // force store traffic under the fault
  ClusterSim cluster(cfg);
  cluster.run_until(0);

  const MdsId victim = 0;
  FaultPlan plan;
  plan.fail_slow(6 * kSecond, 12 * kSecond, victim, 10.0, 10.0);
  plan.arm(cluster);
  cluster.run_until(26 * kSecond);

  // Peers (or the victim itself) flagged the victim while the fault was
  // live, and un-flagged it after the backlog drained: the incident is
  // closed with both edges inside sane bounds.
  const auto& grays = cluster.fault_log().gray_incidents();
  ASSERT_FALSE(grays.empty());
  const GrayIncident& g = grays.front();
  EXPECT_EQ(g.node, victim);
  EXPECT_GE(g.degraded_at, 6 * kSecond);
  EXPECT_LE(g.degraded_at, 12 * kSecond);
  EXPECT_NE(g.detected_by, kInvalidMds);
  EXPECT_FALSE(g.open);
  EXPECT_GT(g.recovered_at, g.degraded_at);
  EXPECT_GT(cluster.fault_log().gray_degraded_seconds(26 * kSecond), 0.0);
  // Every incident this run concerns the one injected victim.
  for (const GrayIncident& inc : grays) EXPECT_EQ(inc.node, victim);
}

TEST(GrayDetection, HealthyClusterNeverFlagsAnyone) {
  SimConfig cfg = small_config(42);
  cfg.mds.health.enabled = true;
  cfg.duration = 15 * kSecond;
  ClusterSim cluster(cfg);
  cluster.run();
  EXPECT_TRUE(cluster.fault_log().gray_incidents().empty());
  EXPECT_EQ(cluster.fault_log().gray_degraded_seconds(15 * kSecond), 0.0);
}

// --- zero-cost-off --------------------------------------------------------

/// Mirror of bench/bench_util.h apply_gray_noop: the layer fully armed
/// but unable to act — health may never flag (infinite relative factor,
/// saturated absolute floor) and hedging may never warm up.
void arm_inert_gray_layer(SimConfig* cfg) {
  cfg->mds.health.enabled = true;
  cfg->mds.health.degraded_factor = 1e300;
  cfg->mds.health.min_lag = std::numeric_limits<SimTime>::max();
  cfg->hedge.enabled = true;
  cfg->hedge.min_samples = std::numeric_limits<std::uint32_t>::max();
}

TEST(GrayZeroCost, InertLayerIsByteIdenticalToDisabled) {
  auto digest = [](SimConfig cfg) {
    ClusterSim cluster(cfg);
    cluster.run_until(10 * kSecond);
    std::vector<double> tput;
    for (const auto& p : cluster.metrics().avg_throughput().points()) {
      tput.push_back(p.value);
    }
    std::uint64_t issued = 0, ok = 0, retries = 0, stale = 0, hedges = 0;
    for (int c = 0; c < cluster.num_clients(); ++c) {
      const ClientStats& s = cluster.client(c).stats();
      issued += s.ops_issued;
      ok += s.ops_ok;
      retries += s.retries;
      stale += s.stale_replies;
      hedges += s.hedges_fired;
    }
    std::uint64_t migrations = 0;
    for (int i = 0; i < cluster.num_mds(); ++i) {
      migrations += cluster.mds(i).stats().migrations_out;
    }
    return std::make_tuple(tput, issued, ok, retries, stale, hedges,
                           migrations, cluster.metrics().total_replies(),
                           cluster.network().total_messages());
  };

  SimConfig plain = small_config(7);
  plain.duration = 10 * kSecond;
  SimConfig inert = plain;
  arm_inert_gray_layer(&inert);

  const auto a = digest(plain);
  const auto b = digest(inert);
  EXPECT_EQ(std::get<5>(b), 0u);  // the inert layer never hedged
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mdsim

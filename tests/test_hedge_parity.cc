// Hedge parity: the standalone Client and the SoA ClientCohort implement
// one hedged-read protocol (client/hedge_policy.h). Against identical
// scripted servers — a slow primary with a slower backup, a slow primary
// with a fast backup — a cohort of one must fire the same hedges, settle
// each race the same way, and discard the loser's reply as stale exactly
// like a standalone client, within the timer wheel's quantization.
//
// The scripted world: two server endpoints take addresses 0 and 1 (a
// num_mds=2 client's whole universe). Replies are keyed purely on the
// request's hedge flag, so it does not matter which address the partition
// picks as the primary authority. A short warm-up of fast replies feeds
// the tail estimator past min_samples; after that the primary turns slow
// and every first attempt hedges at the deterministic min_delay floor.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <tuple>
#include <vector>

#include "client/client.h"
#include "client/cohort.h"
#include "client/hedge_policy.h"
#include "client/retry_policy.h"
#include "fstree/generator.h"
#include "mds/dirfrag.h"
#include "mds/messages.h"
#include "net/network.h"
#include "strategy/partition.h"
#include "workload/workload.h"

namespace mdsim {
namespace {

constexpr std::uint64_t kSeed = 7;
constexpr SimTime kLatency = from_micros(100);

/// Stat the same file forever with a fixed think time: no RNG draws, so
/// the op stream is identical for both client implementations.
struct FixedWorkload final : Workload {
  FsNode* target = nullptr;
  SimTime think = 10 * kMillisecond;
  SimTime next(ClientId, SimTime, Rng&, Operation* out) override {
    out->op = OpType::kStat;
    out->target = target;
    return think;
  }
  std::string name() const override { return "fixed"; }
};

struct Arrival {
  SimTime at = 0;
  std::uint8_t hedge = 0;
  std::uint64_t req_id = 0;
};

/// Reply schedule shared by both server replicas. The first `warm_count`
/// primary requests answer fast (to warm the estimator); after that,
/// primaries answer at `primary_delay` and hedged copies at
/// `hedge_delay` — slower than the primary for the primary-wins case,
/// faster for the backup-wins case.
struct Script {
  SimTime warm_delay = kMillisecond;
  std::size_t warm_count = 8;
  SimTime primary_delay = 30 * kMillisecond;
  SimTime hedge_delay = 0;
  std::size_t primaries_served = 0;
  std::vector<Arrival> arrivals;
};

/// One MDS stand-in: records every arrival, answers per the shared
/// script, echoes the hedge flag so the client can attribute the winner.
struct ScriptedMds final : NetEndpoint {
  Simulation* sim = nullptr;
  Network* net = nullptr;
  Script* script = nullptr;
  NetAddr addr = kInvalidAddr;

  void on_message(NetAddr, MessagePtr msg) override {
    if (msg->type != MsgType::kClientRequest) return;
    auto& m = static_cast<ClientRequestMsg&>(*msg);
    script->arrivals.push_back({sim->now(), m.hedge, m.req_id});
    SimTime delay;
    if (m.hedge != 0) {
      delay = script->hedge_delay;
    } else if (script->primaries_served < script->warm_count) {
      ++script->primaries_served;
      delay = script->warm_delay;
    } else {
      delay = script->primary_delay;
    }
    sim->schedule(delay, [this, id = m.req_id, h = m.hedge,
                          to = m.client_addr]() {
      auto reply = std::make_unique<ClientReplyMsg>();
      reply->req_id = id;
      reply->success = true;
      reply->hedge = h;
      net->send(addr, to, std::move(reply));
    });
  }
};

struct RunOutcome {
  ClientStats stats;
  std::vector<Arrival> arrivals;
};

/// Deterministic hedging: min_delay (5 ms) dominates the warmed-up
/// estimate (~1.5 ms), so every eligible op hedges exactly min_delay
/// after issue — long before the slow primary's 30 ms reply.
HedgeParams test_hedge() {
  HedgeParams hp;
  hp.enabled = true;
  hp.min_delay = 5 * kMillisecond;
  hp.delay_factor = 1.0;
  hp.min_samples = 4;
  return hp;
}

/// Timeouts must never fire (hedging, not retrying, is under test).
ClientRetryParams no_retry() {
  ClientRetryParams rp;
  rp.request_timeout = 200 * kMillisecond;
  return rp;
}

RunOutcome run_world(bool cohort, Script& script, const HedgeParams& hp,
                     SimTime horizon) {
  Simulation sim;
  NetworkParams np;
  np.base_latency = kLatency;
  np.jitter_mean = 0;
  Network net(sim, np);

  FsTree tree;
  NamespaceParams fs;
  fs.seed = kSeed;
  fs.num_users = 4;
  fs.nodes_per_user = 60;
  generate_namespace(tree, fs);
  auto partition = make_partitioner(StrategyKind::kDynamicSubtree, 2, tree);
  DirFragRegistry dirfrag(2, 6);
  FixedWorkload workload;
  workload.target = tree.files().front();

  ScriptedMds servers[2];
  for (int i = 0; i < 2; ++i) {
    servers[i].sim = &sim;
    servers[i].net = &net;
    servers[i].script = &script;
    servers[i].addr = net.attach(&servers[i]);
    EXPECT_EQ(servers[i].addr, i);
  }

  RunOutcome out;
  if (cohort) {
    ClientCohort co(sim, net, tree, workload, *partition, dirfrag,
                    /*count=*/1, /*first_id=*/0, /*num_mds=*/2, kSeed);
    co.set_retry_policy(no_retry());
    co.set_hedge_policy(hp);
    co.start();
    sim.run_until(horizon);
    out.stats = co.stats();
  } else {
    Client c(sim, net, tree, workload, *partition, dirfrag, /*id=*/0,
             /*num_mds=*/2, kSeed);
    c.set_retry_policy(no_retry());
    c.set_hedge_policy(hp);
    c.start();
    sim.run_until(horizon);
    out.stats = c.stats();
  }
  out.arrivals = script.arrivals;
  return out;
}

std::uint64_t absdiff(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : b - a;
}

/// Wheel quantization stretches the cohort's cycles by < 1 ms each, so
/// the horizon cuts the two runs a few ops apart; every per-op decision
/// is identical, so all counters must agree within that cutoff slop.
void expect_counters_close(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_LE(absdiff(a.stats.hedges_fired, b.stats.hedges_fired), 4u);
  EXPECT_LE(absdiff(a.stats.hedge_wins, b.stats.hedge_wins), 4u);
  EXPECT_LE(absdiff(a.stats.wasted_hedges, b.stats.wasted_hedges), 4u);
  EXPECT_LE(absdiff(a.stats.stale_replies, b.stats.stale_replies), 4u);
  EXPECT_LE(absdiff(a.stats.ops_ok, b.stats.ops_ok), 4u);
}

TEST(HedgeParity, HedgeFiresButPrimaryWins) {
  // Backup replies land 60 ms after the hedge — well after the primary's
  // 30 ms reply. Every hedge is wasted and every backup reply is stale.
  const SimTime horizon = 2 * kSecond;
  auto run = [&](bool cohort) {
    Script script;
    script.hedge_delay = 60 * kMillisecond;
    return run_world(cohort, script, test_hedge(), horizon);
  };
  const RunOutcome standalone = run(false);
  const RunOutcome cohort = run(true);

  for (const RunOutcome* r : {&standalone, &cohort}) {
    EXPECT_GT(r->stats.ops_ok, 20u);
    EXPECT_GT(r->stats.hedges_fired, 10u);
    EXPECT_EQ(r->stats.hedge_wins, 0u);
    // Every settled race was settled by the primary; at most one hedge
    // is still racing at the horizon.
    EXPECT_LE(absdiff(r->stats.wasted_hedges, r->stats.hedges_fired), 1u);
    // The losing backup replies arrive after the op completed and fail
    // the req_id match: one stale reply per wasted hedge, minus any
    // still in flight.
    EXPECT_LE(r->stats.stale_replies, r->stats.hedges_fired);
    EXPECT_GE(r->stats.stale_replies + 3, r->stats.wasted_hedges);
    EXPECT_EQ(r->stats.retries, 0u);
    EXPECT_EQ(r->stats.ops_failed, 0u);
    // Arrivals interleave primaries and hedged copies; each hedged copy
    // carries the req_id of a primary already on the wire.
    std::uint64_t hedged_arrivals = 0;
    for (const Arrival& a : r->arrivals) hedged_arrivals += a.hedge;
    EXPECT_EQ(hedged_arrivals, r->stats.hedges_fired);
  }
  expect_counters_close(standalone, cohort);
}

TEST(HedgeParity, BackupWinsAndPrimaryReplyIsDiscardedAsStale) {
  // Backup replies land 2 ms after the hedge (~7 ms into the op) — far
  // ahead of the primary's 30 ms reply. Every hedge wins, and every
  // primary reply arrives after completion and lands in stale_replies.
  const SimTime horizon = 2 * kSecond;
  auto run = [&](bool cohort) {
    Script script;
    script.hedge_delay = 2 * kMillisecond;
    return run_world(cohort, script, test_hedge(), horizon);
  };
  const RunOutcome standalone = run(false);
  const RunOutcome cohort = run(true);

  for (const RunOutcome* r : {&standalone, &cohort}) {
    EXPECT_GT(r->stats.ops_ok, 20u);
    EXPECT_GT(r->stats.hedge_wins, 10u);
    // The estimator tracks its own output here: each win completes at
    // hedge_delay past the fire time, so the estimate ratchets upward
    // until the fire time grazes the primary's reply and a few late
    // races flip to the primary. Backup wins must still dominate.
    EXPECT_LE(r->stats.wasted_hedges, 4u);
    EXPECT_GT(r->stats.hedge_wins, 8 * r->stats.wasted_hedges);
    EXPECT_LE(absdiff(r->stats.hedge_wins + r->stats.wasted_hedges,
                      r->stats.hedges_fired),
              1u);
    // One stale primary reply per won race, minus those still in flight.
    EXPECT_LE(r->stats.stale_replies, r->stats.hedges_fired);
    EXPECT_GE(r->stats.stale_replies + 3, r->stats.hedge_wins);
    EXPECT_EQ(r->stats.retries, 0u);
    EXPECT_EQ(r->stats.ops_failed, 0u);
  }
  expect_counters_close(standalone, cohort);
  // Winning hedges cap the op at ~7 ms instead of 30 ms: the mean must
  // sit well under the slow primary's floor.
  EXPECT_LT(standalone.stats.latency_seconds.mean(), 0.020);
  EXPECT_LT(cohort.stats.latency_seconds.mean(), 0.020);
}

TEST(HedgeParity, ColdEstimatorIsByteIdenticalToDisabled) {
  // min_samples = UINT32_MAX keeps the estimator permanently cold: the
  // issue path must take the ordinary branch, draw no RNG, schedule no
  // timers — the run is indistinguishable from hedging disabled, down to
  // every arrival instant at the servers. This is the same configuration
  // the benches' --gray-noop mode uses for its zero-cost-off gate.
  const SimTime horizon = 2 * kSecond;
  HedgeParams cold = test_hedge();
  cold.min_samples = std::numeric_limits<std::uint32_t>::max();
  HedgeParams off;  // defaults: disabled

  for (bool cohort : {false, true}) {
    Script sa;
    sa.hedge_delay = 2 * kMillisecond;
    const RunOutcome a = run_world(cohort, sa, cold, horizon);
    Script sb;
    sb.hedge_delay = 2 * kMillisecond;
    const RunOutcome b = run_world(cohort, sb, off, horizon);

    EXPECT_EQ(a.stats.hedges_fired, 0u) << "cohort=" << cohort;
    EXPECT_EQ(b.stats.hedges_fired, 0u) << "cohort=" << cohort;
    const auto digest = [](const RunOutcome& r) {
      return std::make_tuple(r.stats.ops_issued, r.stats.ops_completed,
                             r.stats.ops_ok, r.stats.retries,
                             r.stats.stale_replies);
    };
    EXPECT_EQ(digest(a), digest(b)) << "cohort=" << cohort;
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size()) << "cohort=" << cohort;
    for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
      EXPECT_EQ(a.arrivals[i].at, b.arrivals[i].at) << i;
      EXPECT_EQ(a.arrivals[i].hedge, b.arrivals[i].hedge) << i;
      EXPECT_EQ(a.arrivals[i].req_id, b.arrivals[i].req_id) << i;
    }
  }
}

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include "fstree/generator.h"
#include "strategy/lazy_hybrid.h"

namespace mdsim {
namespace {

class LazyHybridTest : public ::testing::Test {
 protected:
  LazyHybridTest() : lh(tree) {
    a = tree.mkdir(tree.root(), "a");
    b = tree.mkdir(a, "b");
    f1 = tree.create_file(b, "f1");
    f2 = tree.create_file(b, "f2");
    g = tree.create_file(a, "g");
  }
  FsTree tree;
  LazyHybridManager lh;
  FsNode* a;
  FsNode* b;
  FsNode* f1;
  FsNode* f2;
  FsNode* g;
};

TEST_F(LazyHybridTest, FreshByDefault) {
  EXPECT_FALSE(lh.is_stale(f1));
  EXPECT_FALSE(lh.is_stale(a));
  EXPECT_EQ(lh.pending(), 0u);
}

TEST_F(LazyHybridTest, ChmodInvalidatesExactlyTheSubtree) {
  const std::uint64_t affected = lh.invalidate_subtree(b);
  EXPECT_EQ(affected, 2u);  // f1, f2
  EXPECT_TRUE(lh.is_stale(f1));
  EXPECT_TRUE(lh.is_stale(f2));
  EXPECT_FALSE(lh.is_stale(g));  // sibling subtree untouched
  EXPECT_FALSE(lh.is_stale(b));  // the changed dir itself is authoritative
}

TEST_F(LazyHybridTest, NestedInvalidationsAccumulate) {
  lh.invalidate_subtree(a);
  lh.invalidate_subtree(b);
  EXPECT_TRUE(lh.is_stale(f1));
  lh.refresh(f1);
  EXPECT_FALSE(lh.is_stale(f1));
  // Another ancestor change re-stales it.
  lh.invalidate_subtree(a);
  EXPECT_TRUE(lh.is_stale(f1));
}

TEST_F(LazyHybridTest, OnAccessRefreshClearsStaleness) {
  lh.invalidate_subtree(b);
  lh.refresh(f1);
  EXPECT_FALSE(lh.is_stale(f1));
  EXPECT_TRUE(lh.is_stale(f2));
  EXPECT_EQ(lh.total_refreshes(), 1u);
}

TEST_F(LazyHybridTest, DrainFixesEverythingEventually) {
  lh.invalidate_subtree(a);  // b, f1, f2, g
  EXPECT_EQ(lh.pending(), 4u);
  int drained = 0;
  while (lh.drain_one() != nullptr) ++drained;
  EXPECT_EQ(drained, 4);
  EXPECT_FALSE(lh.is_stale(f1));
  EXPECT_FALSE(lh.is_stale(f2));
  EXPECT_FALSE(lh.is_stale(g));
  EXPECT_FALSE(lh.is_stale(b));
  EXPECT_EQ(lh.pending(), 0u);
}

TEST_F(LazyHybridTest, SupersededUpdatesAreElided) {
  lh.invalidate_subtree(b);
  lh.refresh(f1);  // on-access fixup beats the queue
  FsNode* fixed = lh.drain_one();
  // The queue skips the already-fresh f1 for free; only f2 needs work.
  EXPECT_EQ(fixed, f2);
  EXPECT_EQ(lh.drain_one(), nullptr);
}

TEST_F(LazyHybridTest, DeletedEntriesDropOut) {
  lh.invalidate_subtree(b);
  ASSERT_TRUE(tree.remove(f1));
  int drained = 0;
  while (lh.drain_one() != nullptr) ++drained;
  EXPECT_EQ(drained, 1);  // only f2
}

TEST_F(LazyHybridTest, DoubleInvalidationDrainsOnce) {
  lh.invalidate_subtree(b);
  lh.invalidate_subtree(b);
  EXPECT_EQ(lh.pending(), 4u);  // queued twice...
  int drained = 0;
  while (lh.drain_one() != nullptr) ++drained;
  EXPECT_EQ(drained, 2);  // ...but each file only needs one real update
}

// Property: after any sequence of invalidations and a full drain, nothing
// is stale (LH eventual consistency — DESIGN invariant 5).
TEST(LazyHybridProperty, EventualConsistencyAfterDrain) {
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    FsTree tree;
    NamespaceParams params;
    params.seed = seed;
    params.num_users = 6;
    params.nodes_per_user = 80;
    generate_namespace(tree, params);
    LazyHybridManager lh(tree);
    Rng rng(seed);
    for (int i = 0; i < 30; ++i) {
      FsNode* dir = tree.dirs()[rng.uniform(tree.dirs().size())];
      lh.invalidate_subtree(dir);
      if (rng.bernoulli(0.3) && !tree.files().empty()) {
        lh.refresh(tree.files()[rng.uniform(tree.files().size())]);
      }
    }
    while (lh.drain_one() != nullptr) {
    }
    tree.visit([&](FsNode* n) { EXPECT_FALSE(lh.is_stale(n)); });
  }
}

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include "test_util.h"

namespace mdsim {
namespace {

/// First file found under `root` (depth-first).
FsNode* find_file_under(FsNode* root) {
  std::vector<FsNode*> stack{root};
  while (!stack.empty()) {
    FsNode* n = stack.back();
    stack.pop_back();
    if (!n->is_dir()) return n;
    for (const auto& [_, c] : n->children()) stack.push_back(c.get());
  }
  return nullptr;
}

class MdsProtocolTest : public ::testing::Test {
 protected:
  void build(StrategyKind strategy) {
    cluster = std::make_unique<ClusterSim>(manual_config(strategy));
    client.attach(*cluster);
    tree = &cluster->tree();
  }

  void run_for(SimTime dt) { cluster->run_until(cluster->sim().now() + dt); }

  MdsId auth_of(FsNode* n) { return cluster->mds(0).authority_for(n); }

  std::unique_ptr<ClusterSim> cluster;
  TestClient client;
  FsTree* tree = nullptr;
};

TEST_F(MdsProtocolTest, StatServedByAuthorityWithoutForwarding) {
  build(StrategyKind::kDynamicSubtree);
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[0]);
  ASSERT_NE(f, nullptr);
  const MdsId auth = auth_of(f);
  client.send(auth, OpType::kStat, f);
  run_for(kSecond);
  ASSERT_EQ(client.replies.size(), 1u);
  EXPECT_TRUE(client.last().success);
  EXPECT_EQ(client.last().hops, 0);
  EXPECT_EQ(client.last().served_by, auth);
  EXPECT_NE(cluster->mds(auth).cache().peek(f->ino()), nullptr);
  EXPECT_EQ(cluster->mds(auth).stats().forwards, 0u);
}

TEST_F(MdsProtocolTest, MisdirectedRequestIsForwarded) {
  build(StrategyKind::kDynamicSubtree);
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[0]);
  const MdsId auth = auth_of(f);
  const MdsId wrong = (auth + 1) % cluster->num_mds();
  client.send(wrong, OpType::kStat, f);
  run_for(kSecond);
  ASSERT_EQ(client.replies.size(), 1u);
  EXPECT_TRUE(client.last().success);
  EXPECT_EQ(client.last().hops, 1);
  EXPECT_EQ(client.last().served_by, auth);
  EXPECT_EQ(cluster->mds(wrong).stats().forwards, 1u);
}

TEST_F(MdsProtocolTest, RepliesCarryDistributionHints) {
  build(StrategyKind::kDynamicSubtree);
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[1]);
  client.send(auth_of(f), OpType::kStat, f);
  run_for(kSecond);
  const auto& hints = client.last().hints;
  ASSERT_EQ(hints.size(), f->ancestry().size());
  for (const auto& h : hints) {
    EXPECT_GE(h.authority, 0);
    EXPECT_LT(h.authority, cluster->num_mds());
  }
  EXPECT_EQ(hints.back().ino, f->ino());
  EXPECT_EQ(hints.front().ino, kRootInode);
}

TEST_F(MdsProtocolTest, CreateAppliesToNamespaceAndJournal) {
  build(StrategyKind::kDynamicSubtree);
  FsNode* dir = cluster->namespace_info().user_roots[2];
  const MdsId auth = auth_of(dir);
  const std::uint64_t journaled_before =
      cluster->mds(auth).stats().updates_journaled;
  client.send(auth, OpType::kCreate, dir, "brand_new_file");
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  FsNode* created = dir->child("brand_new_file");
  ASSERT_NE(created, nullptr);
  EXPECT_EQ(client.last().result_ino, created->ino());
  EXPECT_GT(cluster->mds(auth).stats().updates_journaled, journaled_before);
  EXPECT_TRUE(cluster->mds(auth).journal().contains(created->ino()));
  // The directory object in the shared store knows the new dentry.
  DirBTree* obj = cluster->object_store().object_for_testing(dir);
  ASSERT_NE(obj, nullptr);
  EXPECT_NE(obj->find("brand_new_file", nullptr), nullptr);
}

TEST_F(MdsProtocolTest, DuplicateCreateFails) {
  build(StrategyKind::kDynamicSubtree);
  FsNode* dir = cluster->namespace_info().user_roots[2];
  const MdsId auth = auth_of(dir);
  client.send(auth, OpType::kCreate, dir, "dup");
  run_for(kSecond);
  client.send(auth, OpType::kCreate, dir, "dup");
  run_for(kSecond);
  ASSERT_EQ(client.replies.size(), 2u);
  EXPECT_TRUE(client.replies[0].success);
  EXPECT_FALSE(client.replies[1].success);
}

TEST_F(MdsProtocolTest, UnlinkRemovesAndFailsSecondTime) {
  build(StrategyKind::kDynamicSubtree);
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[3]);
  const InodeId ino = f->ino();
  const MdsId auth = auth_of(f);
  client.send(auth, OpType::kUnlink, f);
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
  EXPECT_EQ(tree->by_ino(ino), nullptr);
  client.send(auth, OpType::kStat, tree->root());  // sanity op still works
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
}

TEST_F(MdsProtocolTest, PermissionDeniedOnPrivateDirs) {
  build(StrategyKind::kDynamicSubtree);
  // Find a private (0700) directory with a file inside.
  FsNode* priv = nullptr;
  FsNode* f = nullptr;
  tree->visit([&](FsNode* n) {
    if (priv != nullptr || n->is_dir() || n->depth() < 3) return;
    for (FsNode* a : n->ancestry()) {
      if (a->is_dir() && a->inode().perms.mode == 0700 && a->depth() >= 2) {
        priv = a;
        f = n;
        return;
      }
    }
  });
  if (f == nullptr) GTEST_SKIP() << "namespace has no private dirs";
  // The owner can stat it; a stranger cannot traverse.
  client.send(auth_of(f), OpType::kStat, f, "", nullptr,
              priv->inode().perms.uid);
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
  client.send(auth_of(f), OpType::kStat, f, "", nullptr, 99999);
  run_for(kSecond);
  EXPECT_FALSE(client.last().success);
}

TEST_F(MdsProtocolTest, ReaddirPrefetchesEmbeddedInodes) {
  build(StrategyKind::kDynamicSubtree);
  FsNode* dir = cluster->namespace_info().user_roots[4];
  ASSERT_GT(dir->child_count(), 2u);
  const MdsId auth = auth_of(dir);
  client.send(auth, OpType::kReaddir, dir);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  // Every child this node is responsible for is now cached.
  MdsNode& node = cluster->mds(auth);
  for (const auto& [_, child] : dir->children()) {
    if (node.authority_for(child.get()) == auth) {
      EXPECT_NE(node.cache().peek(child->ino()), nullptr) << child->path();
    }
  }
  // Subsequent stats are pure cache hits — no further disk reads.
  const std::uint64_t reads_before = node.disk().reads();
  for (const auto& [_, child] : dir->children()) {
    client.send(auth, OpType::kStat, child.get());
  }
  run_for(kSecond);
  EXPECT_EQ(node.disk().reads(), reads_before);
}

TEST_F(MdsProtocolTest, FileGranularityPaysPerInodeFetch) {
  build(StrategyKind::kFileHash);
  FsNode* dir = cluster->namespace_info().user_roots[4];
  ASSERT_GT(dir->child_count(), 2u);
  // readdir at the dir's authority does NOT prefetch inodes; each stat
  // then costs its own fetch at the file's (scattered) authority.
  std::uint64_t reads_before = 0;
  for (int i = 0; i < cluster->num_mds(); ++i) {
    reads_before += cluster->mds(i).disk().reads();
  }
  int files_statted = 0;
  for (const auto& [_, child] : dir->children()) {
    if (child->is_dir()) continue;
    client.send(cluster->mds(0).authority_for(child.get()), OpType::kStat,
                child.get());
    ++files_statted;
  }
  run_for(2 * kSecond);
  std::uint64_t reads_after = 0;
  for (int i = 0; i < cluster->num_mds(); ++i) {
    reads_after += cluster->mds(i).disk().reads();
  }
  // At least one disk transaction per statted file (plus prefix fetches).
  EXPECT_GE(reads_after - reads_before,
            static_cast<std::uint64_t>(files_statted));
}

TEST_F(MdsProtocolTest, PrefixReplicationRegistersAtAuthority) {
  build(StrategyKind::kDirHash);
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[5]);
  ASSERT_NE(f, nullptr);
  const MdsId auth = auth_of(f);
  client.send(auth, OpType::kStat, f);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  // Serving the stat forced prefix replicas of f's ancestors whose
  // authority is elsewhere; each replica must be registered there.
  MdsNode& server = cluster->mds(auth);
  for (FsNode* a : f->ancestry()) {
    if (a == f) continue;
    const MdsId a_auth = server.authority_for(a);
    if (a_auth == auth) continue;
    ASSERT_NE(server.cache().peek(a->ino()), nullptr) << a->path();
    EXPECT_FALSE(server.cache().peek(a->ino())->authoritative);
    EXPECT_GE(cluster->mds(a_auth).replica_holders(a->ino()), 1u)
        << a->path();
  }
}

TEST_F(MdsProtocolTest, UpdateInvalidatesReplicas) {
  build(StrategyKind::kDirHash);
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[5]);
  const MdsId auth = auth_of(f);
  client.send(auth, OpType::kStat, f);
  run_for(kSecond);
  // Find a replicated ancestor.
  FsNode* repl = nullptr;
  MdsId repl_auth = kInvalidMds;
  for (FsNode* a : f->ancestry()) {
    if (a == f) continue;
    const MdsId a_auth = cluster->mds(auth).authority_for(a);
    if (a_auth != auth && a->depth() >= 1) {
      repl = a;
      repl_auth = a_auth;
    }
  }
  if (repl == nullptr) GTEST_SKIP() << "no cross-node prefix in this path";
  ASSERT_GE(cluster->mds(repl_auth).replica_holders(repl->ino()), 1u);
  // chmod at the authority invalidates the replicas: childless copies are
  // dropped; copies still anchoring cached children are refreshed in
  // place and re-registered. Either way no stale version may survive.
  client.send(repl_auth, OpType::kChmod, repl);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  for (int i = 0; i < cluster->num_mds(); ++i) {
    if (i == repl_auth) continue;
    const CacheEntry* e = cluster->mds(i).cache().peek(repl->ino());
    if (e != nullptr && !e->authoritative) {
      EXPECT_EQ(e->version, repl->inode().version) << "stale replica on "
                                                   << i;
    }
  }
}

TEST_F(MdsProtocolTest, RenameDirectoryDropsStaleDescendants) {
  build(StrategyKind::kDynamicSubtree);
  // Pick a user home with a subdirectory containing files.
  FsNode* subdir = nullptr;
  tree->visit([&](FsNode* n) {
    if (subdir == nullptr && n->is_dir() && n->depth() >= 3 &&
        n->child_count() > 0) {
      subdir = n;
    }
  });
  ASSERT_NE(subdir, nullptr);
  FsNode* f = find_file_under(subdir);
  if (f == nullptr) GTEST_SKIP() << "no file in subdir";
  const MdsId auth = auth_of(f);
  client.send(auth, OpType::kStat, f);
  run_for(kSecond);
  ASSERT_NE(cluster->mds(auth).cache().peek(f->ino()), nullptr);

  // Rename the subdirectory into another user's home.
  FsNode* dst = cluster->namespace_info().user_roots[6];
  const MdsId rename_auth = auth_of(subdir);
  client.send(rename_auth, OpType::kRename, subdir, "moved_away", dst);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  EXPECT_EQ(f->ancestry()[2]->ino(), dst->ancestry()[2]->ino());
  // Cached descendants of the moved dir were dropped cluster-wide
  // (pinned/anchoring entries may linger briefly by design).
  for (int i = 0; i < cluster->num_mds(); ++i) {
    CacheEntry* e = cluster->mds(i).cache().peek(f->ino());
    if (e != nullptr) {
      EXPECT_GT(e->pins + e->cached_children, 0u);
    }
  }
}

TEST_F(MdsProtocolTest, LinkAnchorsInode) {
  build(StrategyKind::kDynamicSubtree);
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[0]);
  FsNode* dir = cluster->namespace_info().user_roots[1];
  const MdsId auth = auth_of(dir);
  client.send(auth, OpType::kLink, dir, "hard_link", f);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  EXPECT_TRUE(cluster->anchors().is_anchored(f->ino()));
  EXPECT_EQ(f->inode().nlink, 2u);
  // The anchor chain resolves to the file's real ancestors.
  const auto chain = cluster->anchors().resolve(f->ino());
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.front(), f->parent()->ino());
  EXPECT_EQ(chain.back(), kRootInode);
}

TEST_F(MdsProtocolTest, JournalExpiryTriggersTierTwoWriteback) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.journal_capacity = 64;  // overflow quickly
  cfg.mds.dirfrag_enabled = false;
  cluster = std::make_unique<ClusterSim>(cfg);
  client.attach(*cluster);
  tree = &cluster->tree();

  FsNode* dir = cluster->namespace_info().user_roots[7];
  const MdsId auth = auth_of(dir);
  MdsNode& node = cluster->mds(auth);
  const std::uint64_t writes_before = node.disk().writes();
  for (int i = 0; i < 150; ++i) {
    client.send(auth, OpType::kCreate, dir, "spill" + std::to_string(i));
    if (i % 16 == 15) run_for(100 * kMillisecond);
  }
  run_for(5 * kSecond);
  EXPECT_GT(node.disk().writes(), writes_before);
  EXPECT_LE(node.journal().live_entries(), 64u);
}

TEST_F(MdsProtocolTest, LazyHybridSkipsTraversal) {
  build(StrategyKind::kLazyHybrid);
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[0]);
  const MdsId auth = auth_of(f);
  client.send(auth, OpType::kStat, f);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  MdsNode& node = cluster->mds(auth);
  // Only the file itself is cached: no prefix inodes at all.
  EXPECT_NE(node.cache().peek(f->ino()), nullptr);
  for (FsNode* a : f->ancestry()) {
    if (a == f || a->parent() == nullptr) continue;  // root is bootstrap
    EXPECT_EQ(node.cache().peek(a->ino()), nullptr) << a->path();
  }
  EXPECT_EQ(node.stats().lh_traversal_fixups, 0u);
}

TEST_F(MdsProtocolTest, LazyHybridStaleAccessPaysTraversalOnce) {
  // Disable the background drain so staleness persists until accessed.
  SimConfig cfg = manual_config(StrategyKind::kLazyHybrid);
  cfg.mds.lh_drain_rate = 0.0;
  cluster = std::make_unique<ClusterSim>(cfg);
  client.attach(*cluster);
  tree = &cluster->tree();
  FsNode* f = find_file_under(cluster->namespace_info().user_roots[0]);
  FsNode* dir = f->parent();
  // chmod the parent dir: every nested file's stored ACL goes stale.
  client.send(cluster->mds(0).authority_for(dir), OpType::kChmod, dir);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  ASSERT_TRUE(cluster->lazy()->is_stale(f));

  // The chmod may have made the dir private: stat as the owner.
  const std::uint32_t owner = dir->inode().perms.uid;
  const MdsId auth = cluster->mds(0).authority_for(f);
  client.send(auth, OpType::kStat, f, "", nullptr, owner);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  EXPECT_GE(cluster->mds(auth).stats().lh_traversal_fixups, 1u);
  EXPECT_FALSE(cluster->lazy()->is_stale(f));
  // Second access: cheap again.
  const std::uint64_t fixups = cluster->mds(auth).stats().lh_traversal_fixups;
  client.send(auth, OpType::kStat, f, "", nullptr, owner);
  run_for(kSecond);
  EXPECT_EQ(cluster->mds(auth).stats().lh_traversal_fixups, fixups);
}

TEST_F(MdsProtocolTest, LazyHybridBackgroundDrainEmptiesQueue) {
  // Slow drain so the queue is observably nonempty, then fully drains.
  SimConfig cfg = manual_config(StrategyKind::kLazyHybrid);
  cfg.mds.lh_drain_rate = 60.0;
  cluster = std::make_unique<ClusterSim>(cfg);
  client.attach(*cluster);
  tree = &cluster->tree();
  FsNode* home = cluster->namespace_info().user_roots[2];
  client.send(cluster->mds(0).authority_for(home), OpType::kChmod, home);
  run_for(100 * kMillisecond);
  ASSERT_TRUE(client.last().success);
  ASSERT_GT(cluster->lazy()->pending(), 0u);
  run_for(30 * kSecond);  // drain pump runs on node 0
  EXPECT_EQ(cluster->lazy()->pending(), 0u);
  // Every nested item is fresh again without ever being accessed.
  tree->visit([&](FsNode* n) {
    EXPECT_FALSE(cluster->lazy()->is_stale(n)) << n->path();
  });
}

}  // namespace
}  // namespace mdsim

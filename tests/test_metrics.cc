#include <gtest/gtest.h>

#include "test_util.h"

namespace mdsim {
namespace {

SimConfig metrics_config() {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kStaticSubtree;
  cfg.num_mds = 3;
  cfg.num_clients = 60;
  cfg.fs.num_users = 12;
  cfg.fs.nodes_per_user = 150;
  cfg.duration = 6 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.sample_period = 500 * kMillisecond;
  return cfg;
}

TEST(Metrics, TimeSeriesSampledOnCadence) {
  ClusterSim cluster(metrics_config());
  cluster.run();
  Metrics& m = cluster.metrics();
  // 6s / 0.5s = 12 samples (+- boundary effects).
  EXPECT_NEAR(static_cast<double>(m.avg_throughput().points().size()), 12.0,
              2.0);
  EXPECT_EQ(m.per_mds_throughput().size(), 3u);
  for (const auto& series : m.per_mds_throughput()) {
    EXPECT_EQ(series.points().size(), m.avg_throughput().points().size());
  }
}

TEST(Metrics, AvgIsBetweenMinAndMax) {
  ClusterSim cluster(metrics_config());
  cluster.run();
  Metrics& m = cluster.metrics();
  const auto& avg = m.avg_throughput().points();
  const auto& mn = m.min_throughput().points();
  const auto& mx = m.max_throughput().points();
  ASSERT_EQ(avg.size(), mn.size());
  ASSERT_EQ(avg.size(), mx.size());
  for (std::size_t i = 0; i < avg.size(); ++i) {
    EXPECT_LE(mn[i].value, avg[i].value + 1e-9);
    EXPECT_LE(avg[i].value, mx[i].value + 1e-9);
  }
}

TEST(Metrics, ThroughputAggregatesMatchStats) {
  ClusterSim cluster(metrics_config());
  cluster.run();
  Metrics& m = cluster.metrics();
  const double avg = m.avg_mds_throughput(cluster.sim().now());
  // Cross-check against the time-series mean over the post-warmup window.
  const double series_mean =
      m.avg_throughput().mean_in(2 * kSecond + 1, ~SimTime{0});
  EXPECT_NEAR(avg, series_mean, avg * 0.25 + 1.0);
}

TEST(Metrics, ForwardFractionWithinBounds) {
  ClusterSim cluster(metrics_config());
  cluster.run();
  Metrics& m = cluster.metrics();
  EXPECT_GE(m.overall_forward_fraction(), 0.0);
  for (const auto& p : m.forward_fraction().points()) {
    EXPECT_GE(p.value, 0.0);
  }
}

TEST(Metrics, WarmupResetDropsEarlyCounts) {
  SimConfig cfg = metrics_config();
  ClusterSim with_warmup(cfg);
  with_warmup.run();
  cfg.warmup = 0;
  ClusterSim without(cfg);
  without.run();
  // Without a warmup reset, more replies are attributed to the window.
  EXPECT_GT(without.metrics().total_replies(),
            with_warmup.metrics().total_replies());
}

TEST(Metrics, AggregatesSafeExactlyAtWarmupBoundary) {
  // The warmup reset fires at t == warmup; querying the aggregates at that
  // instant means a zero-length window. Division guards must hold: no
  // div-by-zero, no negative deltas from the just-captured base_* counters.
  SimConfig cfg = metrics_config();
  ClusterSim cluster(cfg);
  cluster.run_until(cfg.warmup);
  Metrics& m = cluster.metrics();
  EXPECT_EQ(cluster.sim().now(), cfg.warmup);
  EXPECT_DOUBLE_EQ(m.avg_mds_throughput(cluster.sim().now()), 0.0);
  EXPECT_DOUBLE_EQ(m.cluster_hit_rate(), 0.0);
  EXPECT_EQ(m.total_replies(), 0u);
  EXPECT_EQ(m.total_failures(), 0u);
  EXPECT_EQ(m.client_latency().count(), 0u);
}

TEST(Metrics, PostWarmupDeltasCountEachReplyOnce) {
  // base_* subtraction must not double-count: replies seen in the full run
  // equal warmup-window replies plus post-warmup replies, measured on two
  // identically seeded clusters.
  SimConfig cfg = metrics_config();
  ClusterSim full(cfg);
  full.run();
  const std::uint64_t post_warmup = full.metrics().total_replies();
  SimConfig no_reset = cfg;
  no_reset.warmup = 0;
  ClusterSim whole(no_reset);
  ClusterSim warm_only(no_reset);
  whole.run();
  warm_only.run_until(cfg.warmup);
  EXPECT_EQ(warm_only.metrics().total_replies() + post_warmup,
            whole.metrics().total_replies());
}

TEST(Metrics, ClientLatencyAggregated) {
  ClusterSim cluster(metrics_config());
  cluster.run();
  const Summary lat = cluster.metrics().client_latency();
  EXPECT_GT(lat.count(), 100u);
  EXPECT_GT(lat.min(), 0.0);
  EXPECT_GE(lat.max(), lat.mean());
}

TEST(Metrics, PrefixFractionAndFillInRange) {
  ClusterSim cluster(metrics_config());
  cluster.run();
  Metrics& m = cluster.metrics();
  EXPECT_GE(m.mean_prefix_fraction(), 0.0);
  EXPECT_LE(m.mean_prefix_fraction(), 1.0);
  EXPECT_GT(m.mean_cache_fill(), 0.0);
  EXPECT_LE(m.mean_cache_fill(), 1.1);
}

}  // namespace
}  // namespace mdsim

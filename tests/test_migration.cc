#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace mdsim {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  void build() {
    SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
    cfg.mds.min_migration_items = 2;
    cluster = std::make_unique<ClusterSim>(cfg);
    client.attach(*cluster);
  }

  void run_for(SimTime dt) { cluster->run_until(cluster->sim().now() + dt); }

  /// Warm the authority's cache for every item under `root`.
  void warm_subtree(FsNode* root) {
    std::vector<FsNode*> stack{root};
    while (!stack.empty()) {
      FsNode* n = stack.back();
      stack.pop_back();
      client.send(cluster->mds(0).authority_for(n),
                  n->is_dir() ? OpType::kReaddir : OpType::kStat, n);
      if (n->is_dir()) {
        for (const auto& [_, c] : n->children()) stack.push_back(c.get());
      }
    }
    run_for(5 * kSecond);
  }

  std::unique_ptr<ClusterSim> cluster;
  TestClient client;
};

TEST_F(MigrationTest, ForcedMigrationTransfersAuthorityAndState) {
  build();
  // Use the largest home so the transferred state is non-trivial.
  FsNode* home = cluster->namespace_info().user_roots[0];
  for (FsNode* u : cluster->namespace_info().user_roots) {
    if (u->subtree_size() > home->subtree_size()) home = u;
  }
  const MdsId src = cluster->mds(0).authority_for(home);
  const MdsId dst = (src + 1) % cluster->num_mds();
  warm_subtree(home);

  std::vector<InodeId> cached_before;
  cluster->mds(src).cache().for_each([&](CacheEntry& e) {
    if (e.authoritative && FsTree::is_ancestor_of(home, e.node)) {
      cached_before.push_back(e.node->ino());
    }
  });
  ASSERT_GT(cached_before.size(), 5u);

  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  run_for(2 * kSecond);

  // Authority flipped cluster-wide.
  EXPECT_EQ(cluster->mds(0).authority_for(home), dst);
  for (const auto& [_, c] : home->children()) {
    EXPECT_EQ(cluster->mds(0).authority_for(c.get()), dst);
  }
  // All transferred state landed in the importer's cache — no disk I/O
  // lost items (the point of transferring active state, section 4.3).
  for (InodeId ino : cached_before) {
    EXPECT_NE(cluster->mds(dst).cache().peek(ino), nullptr) << ino;
  }
  // Exporter dropped its copies (modulo anchoring leftovers).
  std::size_t still_there = 0;
  for (InodeId ino : cached_before) {
    if (cluster->mds(src).cache().peek(ino) != nullptr) ++still_there;
  }
  EXPECT_LT(still_there, cached_before.size() / 4);

  EXPECT_EQ(cluster->mds(src).stats().migrations_out, 1u);
  EXPECT_EQ(cluster->mds(dst).stats().migrations_in, 1u);
  EXPECT_GE(cluster->mds(dst).stats().items_migrated_in,
            cached_before.size() - 2);
  EXPECT_TRUE(cluster->mds(dst).imported_subtrees().count(home->ino()) > 0);
  EXPECT_EQ(cluster->mds(src).frozen_subtrees(), 0u);
}

TEST_F(MigrationTest, ImporterAnchorsPrefixInodes) {
  build();
  FsNode* home = cluster->namespace_info().user_roots[1];
  const MdsId src = cluster->mds(0).authority_for(home);
  const MdsId dst = (src + 1) % cluster->num_mds();
  warm_subtree(home);
  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  run_for(2 * kSecond);
  // The importer caches the subtree root's ancestors as prefixes (the
  // per-delegation overhead the paper describes).
  for (FsNode* a : home->ancestry()) {
    EXPECT_NE(cluster->mds(dst).cache().peek(a->ino()), nullptr)
        << a->path();
  }
  EXPECT_EQ(cluster->mds(dst).cache().check_invariants(), "");
  EXPECT_EQ(cluster->mds(src).cache().check_invariants(), "");
}

TEST_F(MigrationTest, RequestsDeferredWhileFrozenThenServed) {
  build();
  FsNode* home = cluster->namespace_info().user_roots[2];
  FsNode* file = nullptr;
  for (const auto& [_, c] : home->children()) {
    if (!c->is_dir()) file = c.get();
  }
  if (file == nullptr) GTEST_SKIP() << "home has no top-level file";
  const MdsId src = cluster->mds(0).authority_for(home);
  const MdsId dst = (src + 1) % cluster->num_mds();
  warm_subtree(home);

  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  // The subtree is frozen the instant the migration starts; a request
  // arriving during the double-commit is deferred, not dropped.
  client.send(src, OpType::kStat, file);
  const std::size_t replies_before = client.replies.size();
  run_for(200 * kMicrosecond);
  EXPECT_EQ(cluster->mds(src).deferred_requests(), 1u);
  EXPECT_EQ(client.replies.size(), replies_before);
  run_for(2 * kSecond);
  EXPECT_EQ(cluster->mds(src).deferred_requests(), 0u);
  ASSERT_GT(client.replies.size(), replies_before);
  EXPECT_TRUE(client.last().success);
  // Served by the new authority after the commit.
  EXPECT_EQ(client.last().served_by, dst);
}

TEST_F(MigrationTest, MigrationRefusedWhenTooSmallOrBusy) {
  build();
  FsNode* home = cluster->namespace_info().user_roots[3];
  const MdsId src = cluster->mds(0).authority_for(home);
  const MdsId dst = (src + 1) % cluster->num_mds();
  // Nothing cached yet: fewer than min_migration_items -> refused.
  EXPECT_FALSE(cluster->mds(src).migrate_subtree(home, dst));
  // Wrong owner refused.
  EXPECT_FALSE(cluster->mds(dst).migrate_subtree(home, src));
  // Self-migration refused.
  warm_subtree(home);
  EXPECT_FALSE(cluster->mds(src).migrate_subtree(home, src));
  // While one migration is in flight, a second is refused.
  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  FsNode* other = cluster->namespace_info().user_roots[4];
  if (cluster->mds(0).authority_for(other) == src) {
    EXPECT_FALSE(cluster->mds(src).migrate_subtree(other, dst));
  }
  run_for(2 * kSecond);
}

TEST_F(MigrationTest, ReDelegationPrefersImportedTrees) {
  build();
  FsNode* home = cluster->namespace_info().user_roots[5];
  const MdsId src = cluster->mds(0).authority_for(home);
  const MdsId dst = (src + 1) % cluster->num_mds();
  warm_subtree(home);
  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  run_for(2 * kSecond);
  ASSERT_TRUE(cluster->mds(dst).imported_subtrees().count(home->ino()) > 0);
  // The importer can hand the whole tree on (its items are resident).
  const MdsId third = (dst + 1) % cluster->num_mds();
  ASSERT_TRUE(cluster->mds(dst).migrate_subtree(home, third));
  run_for(2 * kSecond);
  EXPECT_EQ(cluster->mds(0).authority_for(home), third);
  EXPECT_FALSE(cluster->mds(dst).imported_subtrees().count(home->ino()) > 0);
  EXPECT_TRUE(cluster->mds(third).imported_subtrees().count(home->ino()) >
              0);
}

TEST_F(MigrationTest, UtilizationVectorMetricAlsoRebalances) {
  // The paper's sketched alternative metric (section 4.3): equalize the
  // bottleneck resource. It must react to the same skew the weighted
  // metric does.
  SimConfig cfg = shift_config(StrategyKind::kDynamicSubtree);
  cfg.num_mds = 4;
  cfg.fs.num_users = 48;
  cfg.num_clients = 160;
  cfg.shifting.shift_at = 3 * kSecond;
  cfg.duration = 16 * kSecond;
  cfg.warmup = kSecond;
  cfg.mds.balancer_metric = MdsParams::BalancerMetric::kUtilizationVector;
  ClusterSim cluster(cfg);
  cluster.run();
  std::uint64_t total_migrations = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    total_migrations += cluster.mds(i).stats().migrations_out;
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "") << i;
  }
  EXPECT_GE(total_migrations, 1u);
  EXPECT_GT(cluster.metrics().total_replies(), 1000u);
}

TEST_F(MigrationTest, BalancerRebalancesSkewedLoad) {
  // End-to-end: shifted clients overload one node; the dynamic balancer
  // must migrate at least one subtree away from it (figure 5's mechanism).
  SimConfig cfg = shift_config(StrategyKind::kDynamicSubtree);
  cfg.num_mds = 4;
  cfg.fs.num_users = 48;
  cfg.num_clients = 160;
  cfg.shifting.shift_at = 3 * kSecond;
  cfg.duration = 16 * kSecond;
  cfg.warmup = kSecond;
  ClusterSim cluster(cfg);
  cluster.run();
  std::uint64_t total_migrations = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    total_migrations += cluster.mds(i).stats().migrations_out;
  }
  EXPECT_GE(total_migrations, 1u);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "") << i;
  }
}

}  // namespace
}  // namespace mdsim

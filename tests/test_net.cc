#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace mdsim {
namespace {

struct Recorder final : NetEndpoint {
  struct Arrival {
    NetAddr from;
    MsgType type;
    SimTime at;
  };
  Simulation* sim = nullptr;
  std::vector<Arrival> arrivals;

  void on_message(NetAddr from, MessagePtr msg) override {
    arrivals.push_back({from, msg->type, sim->now()});
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() {
    params_.base_latency = 100;
    params_.jitter_mean = 0;
    net_ = std::make_unique<Network>(sim_, params_);
    for (auto& r : nodes_) {
      r.sim = &sim_;
      addrs_.push_back(net_->attach(&r));
    }
  }

  MessagePtr make(MsgType t) { return std::make_unique<Message>(t); }

  Simulation sim_;
  NetworkParams params_;
  std::unique_ptr<Network> net_;
  Recorder nodes_[3];
  std::vector<NetAddr> addrs_;
};

TEST_F(NetworkTest, DeliversWithBaseLatency) {
  net_->send(addrs_[0], addrs_[1], make(MsgType::kHeartbeat));
  sim_.run();
  ASSERT_EQ(nodes_[1].arrivals.size(), 1u);
  EXPECT_EQ(nodes_[1].arrivals[0].at, 100u);
  EXPECT_EQ(nodes_[1].arrivals[0].from, addrs_[0]);
}

TEST_F(NetworkTest, SelfSendIsImmediate) {
  net_->send(addrs_[0], addrs_[0], make(MsgType::kHeartbeat));
  sim_.run();
  ASSERT_EQ(nodes_[0].arrivals.size(), 1u);
  EXPECT_EQ(nodes_[0].arrivals[0].at, 0u);
}

TEST_F(NetworkTest, CountsByType) {
  net_->send(addrs_[0], addrs_[1], make(MsgType::kHeartbeat));
  net_->send(addrs_[0], addrs_[2], make(MsgType::kHeartbeat));
  net_->send(addrs_[1], addrs_[2], make(MsgType::kClientRequest));
  sim_.run();
  EXPECT_EQ(net_->messages_sent(MsgType::kHeartbeat), 2u);
  EXPECT_EQ(net_->messages_sent(MsgType::kClientRequest), 1u);
  EXPECT_EQ(net_->total_messages(), 3u);
  net_->reset_counters();
  EXPECT_EQ(net_->total_messages(), 0u);
}

TEST(NetworkFifo, PerPairOrderPreservedDespiteJitter) {
  Simulation sim;
  NetworkParams params;
  params.base_latency = 100;
  params.jitter_mean = 500;  // heavy jitter would reorder without FIFO
  Network net(sim, params);
  Recorder a, b;
  a.sim = &sim;
  b.sim = &sim;
  const NetAddr aa = net.attach(&a);
  const NetAddr ba = net.attach(&b);
  constexpr int kMsgs = 200;
  for (int i = 0; i < kMsgs; ++i) {
    auto msg = std::make_unique<Message>(MsgType::kClientRequest,
                                         static_cast<std::uint32_t>(i));
    net.send(aa, ba, std::move(msg));
  }
  sim.run();
  ASSERT_EQ(b.arrivals.size(), static_cast<std::size_t>(kMsgs));
  for (std::size_t i = 1; i < b.arrivals.size(); ++i) {
    EXPECT_LE(b.arrivals[i - 1].at, b.arrivals[i].at);
  }
}

TEST(NetworkJitter, LatencyAtLeastBase) {
  Simulation sim;
  NetworkParams params;
  params.base_latency = 100;
  params.jitter_mean = 50;
  Network net(sim, params);
  Recorder a, b;
  a.sim = &sim;
  b.sim = &sim;
  const NetAddr aa = net.attach(&a);
  const NetAddr ba = net.attach(&b);
  SimTime send_at = 0;
  for (int i = 0; i < 100; ++i) {
    sim.schedule(send_at, [&net, aa, ba] {
      net.send(aa, ba, std::make_unique<Message>(MsgType::kHeartbeat));
    });
    send_at += 10000;
  }
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 100u);
  for (std::size_t i = 0; i < b.arrivals.size(); ++i) {
    const SimTime latency = b.arrivals[i].at - i * 10000;
    EXPECT_GE(latency, 100u);
  }
}

}  // namespace
}  // namespace mdsim

// Network partitions and split-brain safety. Two layers:
//
//  * fabric-level: Network::partition()/heal() and directed cut_link()
//    drop exactly the traffic they claim to, attribute drops to the
//    right counter, and leave healthy timings byte-identical once healed;
//
//  * cluster-level: a minority-side MDS loses its authority lease and
//    self-fences (parks writes, keeps serving reads), the majority
//    quorum waits out the takeover grace before re-delegating under a
//    bumped epoch, no schedule ever yields two lease-valid authorities
//    for one subtree, and on heal the fenced node reconciles and its
//    parked writes land exactly once.
//
// The namespace-partition *strategies* (how the tree is split across
// nodes) live in test_strategy_partition.cc; this file is about the
// network splitting.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/fault_plan.h"
#include "test_util.h"

namespace mdsim {
namespace {

// ---------------------------------------------------------------------------
// Fabric level
// ---------------------------------------------------------------------------

struct Recorder final : NetEndpoint {
  Simulation* sim = nullptr;
  std::vector<std::pair<NetAddr, SimTime>> arrivals;
  void on_message(NetAddr from, MessagePtr msg) override {
    (void)msg;
    arrivals.push_back({from, sim->now()});
  }
};

class NetPartitionTest : public ::testing::Test {
 protected:
  NetPartitionTest() {
    params_.base_latency = 100;
    params_.jitter_mean = 0;
    params_.seed = 7;
    net_ = std::make_unique<Network>(sim_, params_);
    for (auto& r : nodes_) {
      r.sim = &sim_;
      addrs_.push_back(net_->attach(&r));
    }
  }

  MessagePtr ping() { return std::make_unique<HeartbeatMsg>(); }

  Simulation sim_;
  NetworkParams params_;
  std::unique_ptr<Network> net_;
  Recorder nodes_[4];
  std::vector<NetAddr> addrs_;
};

TEST_F(NetPartitionTest, PartitionDropsCrossGroupTrafficBothWays) {
  net_->partition({{addrs_[0], addrs_[1]}, {addrs_[2], addrs_[3]}});
  EXPECT_TRUE(net_->partitioned());
  for (int i = 0; i < 5; ++i) {
    net_->send(addrs_[0], addrs_[2], ping());  // cross: dropped
    net_->send(addrs_[2], addrs_[0], ping());  // cross: dropped
    net_->send(addrs_[0], addrs_[1], ping());  // same side: delivered
    net_->send(addrs_[2], addrs_[3], ping());  // same side: delivered
  }
  sim_.run();
  EXPECT_TRUE(nodes_[0].arrivals.empty());
  EXPECT_TRUE(nodes_[2].arrivals.empty());
  EXPECT_EQ(nodes_[1].arrivals.size(), 5u);
  EXPECT_EQ(nodes_[3].arrivals.size(), 5u);
  EXPECT_EQ(net_->partition_dropped(), 10u);

  net_->heal();
  EXPECT_FALSE(net_->partitioned());
  net_->send(addrs_[0], addrs_[2], ping());
  sim_.run();
  EXPECT_EQ(nodes_[2].arrivals.size(), 1u);
  EXPECT_EQ(net_->partition_dropped(), 10u);
}

TEST_F(NetPartitionTest, UnlistedEndpointsStayWithGroupZero) {
  // Only node 3 is exiled; 0..2 (including the never-listed 0 and 1)
  // remain mutually connected.
  net_->partition({{addrs_[2]}, {addrs_[3]}});
  net_->send(addrs_[0], addrs_[1], ping());
  net_->send(addrs_[0], addrs_[2], ping());
  net_->send(addrs_[0], addrs_[3], ping());
  sim_.run();
  EXPECT_EQ(nodes_[1].arrivals.size(), 1u);
  EXPECT_EQ(nodes_[2].arrivals.size(), 1u);
  EXPECT_TRUE(nodes_[3].arrivals.empty());
}

TEST_F(NetPartitionTest, DirectedCutDropsOneDirectionOnly) {
  net_->cut_link(addrs_[0], addrs_[1]);
  for (int i = 0; i < 4; ++i) {
    net_->send(addrs_[0], addrs_[1], ping());  // cut direction
    net_->send(addrs_[1], addrs_[0], ping());  // reverse: alive
  }
  sim_.run();
  EXPECT_TRUE(nodes_[1].arrivals.empty());
  EXPECT_EQ(nodes_[0].arrivals.size(), 4u);
  EXPECT_EQ(net_->partition_dropped(), 4u);

  net_->restore_link(addrs_[0], addrs_[1]);
  net_->send(addrs_[0], addrs_[1], ping());
  sim_.run();
  EXPECT_EQ(nodes_[1].arrivals.size(), 1u);
}

TEST_F(NetPartitionTest, DropAttributionSplitsByCause) {
  // One drop of each kind: downed endpoint, partition boundary, link
  // fault. Each lands in its own counter; the legacy total is the sum.
  net_->set_down(addrs_[3], true);
  net_->send(addrs_[0], addrs_[3], ping());  // down drop

  net_->partition({{addrs_[0]}, {addrs_[1], addrs_[2]}});
  net_->send(addrs_[0], addrs_[1], ping());  // partition drop
  net_->heal();

  LinkFault f;
  f.drop = 1.0;
  net_->set_link_fault(addrs_[0], addrs_[1], f);
  net_->send(addrs_[0], addrs_[1], ping());  // fault drop
  net_->clear_link_fault(addrs_[0], addrs_[1]);

  sim_.run();
  EXPECT_EQ(net_->down_dropped(), 1u);
  EXPECT_EQ(net_->partition_dropped(), 1u);
  EXPECT_EQ(net_->fault_dropped(), 1u);
  EXPECT_EQ(net_->dropped_messages(), 3u);
}

TEST_F(NetPartitionTest, HealedFabricKeepsHealthyTimings) {
  // Deliveries after heal() are byte-identical to a network that was
  // never partitioned: the check is a branch, not an RNG consumer.
  NetworkParams params = params_;
  params.jitter_mean = from_micros(20);
  auto run = [&](bool with_partition) {
    Simulation sim;
    Network net(sim, params);
    Recorder a, b;
    a.sim = &sim;
    b.sim = &sim;
    const NetAddr aa = net.attach(&a);
    const NetAddr ab = net.attach(&b);
    if (with_partition) {
      net.partition({{aa}, {ab}});
      net.cut_link(ab, aa);
      net.heal();
    }
    for (int i = 0; i < 50; ++i) {
      net.send(aa, ab, std::make_unique<HeartbeatMsg>());
    }
    sim.run();
    std::vector<SimTime> times;
    for (const auto& arr : b.arrivals) times.push_back(arr.second);
    return times;
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Cluster level
// ---------------------------------------------------------------------------

/// At most one live, unfenced node may believe itself the authority of
/// any subtree root — the split-brain invariant, checked through each
/// node's *own* (possibly frozen) view of the partition map.
void expect_single_authority(ClusterSim& cluster, SimTime at) {
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
  ASSERT_NE(subtree, nullptr);
  for (const FsNode* root : subtree->known_roots()) {
    int claimants = 0;
    for (int i = 0; i < cluster.num_mds(); ++i) {
      MdsNode& n = cluster.mds(i);
      if (n.failed() || n.fenced()) continue;
      if (n.authority_for(root) == i) ++claimants;
    }
    EXPECT_LE(claimants, 1)
        << "root ino " << root->ino() << " at t=" << to_seconds(at);
  }
}

/// A user home owned by the given node (nullptr if it owns none).
FsNode* home_owned_by(ClusterSim& cluster, MdsId owner) {
  for (FsNode* u : cluster.namespace_info().user_roots) {
    if (cluster.mds(0).authority_for(u) == owner) return u;
  }
  return nullptr;
}

/// First file child of `dir` (setattr target), else nullptr.
FsNode* file_child(FsNode* dir) {
  for (const auto& [_, c] : dir->children()) {
    if (!c->is_dir()) return c.get();
  }
  for (const auto& [_, c] : dir->children()) {
    if (FsNode* f = file_child(c.get())) return f;
  }
  return nullptr;
}

class ClusterPartitionTest : public ::testing::Test {
 protected:
  void build(int num_mds = 3, std::uint64_t seed = 42) {
    SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree, num_mds,
                                  seed);
    cfg.mds.min_migration_items = 2;
    cluster = std::make_unique<ClusterSim>(cfg);
    maj_client.attach(*cluster);
    min_client.attach(*cluster);
  }

  void run_until(SimTime t) { cluster->run_until(t); }

  std::unique_ptr<ClusterSim> cluster;
  TestClient maj_client;
  TestClient min_client;
};

TEST_F(ClusterPartitionTest, MinorityFencesWritesParkAndLandAfterHeal) {
  build();
  // Isolate a node that owns territory, with min_client on its side.
  MdsId victim = kInvalidMds;
  FsNode* home = nullptr;
  for (MdsId m = 0; m < cluster->num_mds() && home == nullptr; ++m) {
    if ((home = home_owned_by(*cluster, m)) != nullptr) victim = m;
  }
  ASSERT_NE(home, nullptr);
  FsNode* file = file_child(home);
  ASSERT_NE(file, nullptr);

  // Warm the victim's cache for the file's path while healthy, so the
  // fenced read below can be served from cache (a cold read would need a
  // prefix replica from across the cut and just hang — acceptable, but
  // not what this test is about).
  run_until(2 * kSecond);
  const std::uint64_t warm_id = min_client.send(victim, OpType::kStat, file);
  run_until(4 * kSecond);
  ASSERT_NE(min_client.reply_for(warm_id), nullptr);

  std::vector<NetAddr> minority{victim, min_client.addr()};
  cluster->network().partition({{}, minority});

  // The lease (2 s) lapses and the victim self-fences well before the
  // majority's grace-delayed takeover.
  run_until(8 * kSecond);
  EXPECT_TRUE(cluster->mds(victim).fenced());
  EXPECT_GE(cluster->mds(victim).stats().fence_events, 1u);
  for (int i = 0; i < cluster->num_mds(); ++i) {
    if (i != victim) EXPECT_FALSE(cluster->mds(i).fenced()) << i;
  }

  // A minority-side write parks (CP for writes: no ack, no apply)...
  const std::uint64_t size_before = file->inode().size;
  const std::uint64_t parked_id =
      min_client.send(victim, OpType::kSetattr, file);
  // ...while a minority-side read is still served (stale reads allowed).
  const std::uint64_t read_id = min_client.send(victim, OpType::kStat, file);
  run_until(9 * kSecond);
  EXPECT_GE(cluster->mds(victim).parked_requests(), 1u);
  EXPECT_GE(cluster->mds(victim).stats().writes_parked_fenced, 1u);
  EXPECT_EQ(min_client.reply_for(parked_id), nullptr);
  EXPECT_NE(min_client.reply_for(read_id), nullptr);
  EXPECT_EQ(file->inode().size, size_before);

  // Quorum-gated takeover: detection (~3 missed heartbeats) plus the
  // takeover grace, then the majority re-delegates under a bumped epoch.
  run_until(14 * kSecond);
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster->partition());
  ASSERT_NE(subtree, nullptr);
  EXPECT_EQ(subtree->epoch(), 2u);
  const MdsId heir = subtree->authority_of(home);
  EXPECT_NE(heir, victim);
  EXPECT_TRUE(subtree->delegations_of(victim).empty());
  for (int i = 0; i < cluster->num_mds(); ++i) {
    if (i == victim) continue;
    EXPECT_EQ(cluster->mds(i).view_epoch(), 2u) << i;
  }
  // The fenced node's view stays frozen at the old epoch; it cannot be
  // talked into the new regime while it cannot prove a quorum.
  EXPECT_EQ(cluster->mds(victim).view_epoch(), 1u);
  EXPECT_TRUE(cluster->mds(victim).fenced());
  expect_single_authority(*cluster, 14 * kSecond);

  // Heal: the victim's lease renews, it adopts the new epoch, sheds the
  // territory it lost and re-routes the parked write to the heir — which
  // applies it exactly once.
  cluster->network().heal();
  run_until(20 * kSecond);
  EXPECT_FALSE(cluster->mds(victim).fenced());
  EXPECT_GE(cluster->mds(victim).stats().unfence_events, 1u);
  EXPECT_EQ(cluster->mds(victim).view_epoch(), 2u);
  EXPECT_EQ(cluster->mds(victim).parked_requests(), 0u);
  ASSERT_NE(min_client.reply_for(parked_id), nullptr);
  EXPECT_TRUE(min_client.reply_for(parked_id)->success);
  EXPECT_EQ(file->inode().size, size_before + 1);
  expect_single_authority(*cluster, 20 * kSecond);

  // The fence incident was logged and closed.
  const auto& fences = cluster->fault_log().fence_incidents();
  ASSERT_GE(fences.size(), 1u);
  EXPECT_EQ(fences[0].node, victim);
  EXPECT_FALSE(fences[0].open);
}

TEST_F(ClusterPartitionTest, EvenSplitFencesBothSidesAndNobodyTakesOver) {
  build(/*num_mds=*/4);
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster->partition());
  ASSERT_NE(subtree, nullptr);
  const std::size_t points_before = subtree->delegation_count();

  run_until(4 * kSecond);
  cluster->network().partition({{0, 2}, {1, 3}});
  run_until(14 * kSecond);

  // 2-2: neither side can prove a strict majority. Everyone fences; every
  // pending takeover stalls; the map never flips.
  std::uint64_t deferred = 0, takeovers = 0;
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_TRUE(cluster->mds(i).fenced()) << i;
    deferred += cluster->mds(i).stats().takeovers_deferred;
    takeovers += cluster->mds(i).stats().takeovers;
  }
  EXPECT_GT(deferred, 0u);
  EXPECT_EQ(takeovers, 0u);
  EXPECT_EQ(subtree->epoch(), 1u);
  EXPECT_EQ(subtree->delegation_count(), points_before);
  expect_single_authority(*cluster, 14 * kSecond);

  cluster->network().heal();
  run_until(20 * kSecond);
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_FALSE(cluster->mds(i).fenced()) << i;
    EXPECT_EQ(cluster->mds(i).pending_takeovers(), 0u) << i;
  }
  EXPECT_EQ(subtree->epoch(), 1u);  // nothing was ever reconfigured
  expect_single_authority(*cluster, 20 * kSecond);
}

TEST_F(ClusterPartitionTest, AsymmetricOutboundCutFencesInaudibleNode) {
  build();
  run_until(4 * kSecond);
  // Node 1 can hear everyone, but nobody hears node 1: its outbound
  // links are cut. Merely receiving majority heartbeats must NOT renew
  // its lease — the alive-mask shows the majority no longer lists it.
  cluster->network().cut_link(1, 0);
  cluster->network().cut_link(1, 2);

  run_until(14 * kSecond);
  EXPECT_TRUE(cluster->mds(1).fenced());
  // The majority declared it dead and, after the grace, took over.
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster->partition());
  EXPECT_EQ(subtree->epoch(), 2u);
  EXPECT_TRUE(subtree->delegations_of(1).empty());
  // It keeps hearing epoch-2 heartbeats but stays frozen while fenced.
  EXPECT_EQ(cluster->mds(1).view_epoch(), 1u);
  expect_single_authority(*cluster, 14 * kSecond);

  cluster->network().restore_link(1, 0);
  cluster->network().restore_link(1, 2);
  run_until(20 * kSecond);
  EXPECT_FALSE(cluster->mds(1).fenced());
  EXPECT_EQ(cluster->mds(1).view_epoch(), 2u);
  expect_single_authority(*cluster, 20 * kSecond);
}

TEST_F(ClusterPartitionTest, InboundCutNeverElectsSecondCoordinator) {
  build();
  run_until(4 * kSecond);
  // The reverse asymmetry: node 1 is heard by everyone but hears nobody.
  // From its own view the whole cluster died and it is the lowest alive
  // id — exactly the minority-coordinator hazard. It must fence (no acks
  // renew its lease) and stall every takeover instead of executing one.
  cluster->network().cut_link(0, 1);
  cluster->network().cut_link(2, 1);

  run_until(14 * kSecond);
  EXPECT_TRUE(cluster->mds(1).fenced());
  EXPECT_GT(cluster->mds(1).stats().takeovers_deferred, 0u);
  std::uint64_t takeovers = 0;
  for (int i = 0; i < cluster->num_mds(); ++i) {
    takeovers += cluster->mds(i).stats().takeovers;
  }
  // The majority still hears node 1 — no detection, no takeover, and the
  // fenced node executed none of its own: the map never flipped.
  EXPECT_EQ(takeovers, 0u);
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster->partition());
  EXPECT_EQ(subtree->epoch(), 1u);
  expect_single_authority(*cluster, 14 * kSecond);

  cluster->network().restore_link(0, 1);
  cluster->network().restore_link(2, 1);
  run_until(20 * kSecond);
  EXPECT_FALSE(cluster->mds(1).fenced());
  EXPECT_EQ(cluster->mds(1).pending_takeovers(), 0u);
  expect_single_authority(*cluster, 20 * kSecond);
}

TEST_F(ClusterPartitionTest, FlappingLinkRidesOutSuspicionWithoutTakeover) {
  build();
  run_until(4 * kSecond);
  // Cut the 1<->2 link just past the detection horizon, then restore it:
  // both nodes suspect each other, but the takeover grace outlives the
  // flap and the returning heartbeats cancel the pending takeovers.
  // Neither node ever loses quorum (node 0 stays connected to both).
  cluster->network().cut_link(1, 2);
  cluster->network().cut_link(2, 1);
  run_until(7 * kSecond + 500 * kMillisecond);
  cluster->network().restore_link(1, 2);
  cluster->network().restore_link(2, 1);

  run_until(16 * kSecond);
  std::uint64_t takeovers = 0;
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_FALSE(cluster->mds(i).fenced()) << i;
    EXPECT_EQ(cluster->mds(i).pending_takeovers(), 0u) << i;
    takeovers += cluster->mds(i).stats().takeovers;
  }
  EXPECT_EQ(takeovers, 0u);
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster->partition());
  EXPECT_EQ(subtree->epoch(), 1u);
  expect_single_authority(*cluster, 16 * kSecond);
}

TEST_F(ClusterPartitionTest, CutDuringMigrationBeforeAckRollsBackImporter) {
  build();
  FsNode* home = cluster->namespace_info().user_roots[0];
  for (FsNode* u : cluster->namespace_info().user_roots) {
    if (u->subtree_size() > home->subtree_size()) home = u;
  }
  const MdsId src = cluster->mds(0).authority_for(home);
  const MdsId dst = (src + 1) % cluster->num_mds();

  // Warm the exporter so the migration carries real items.
  std::vector<FsNode*> stack{home};
  while (!stack.empty()) {
    FsNode* n = stack.back();
    stack.pop_back();
    maj_client.send(src, n->is_dir() ? OpType::kReaddir : OpType::kStat, n);
    if (n->is_dir()) {
      for (const auto& [_, c] : n->children()) stack.push_back(c.get());
    }
  }
  run_until(cluster->sim().now() + 5 * kSecond);
  const SimTime t0 = cluster->sim().now();

  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  // Step until the prepare landed at the importer, then split the fabric
  // with the importer on the minority side — the ack cannot reach the
  // exporter, and the commit point is never passed.
  for (int i = 0; i < 10000 && !cluster->mds(dst).migrating(); ++i) {
    run_until(cluster->sim().now() + from_micros(50));
  }
  ASSERT_TRUE(cluster->mds(dst).migrating());
  cluster->network().partition({{}, {dst, min_client.addr()}});
  ASSERT_EQ(cluster->mds(0).authority_for(home), src);  // never flipped

  run_until(t0 + 14 * kSecond);
  // The importer (fenced on the minority side) resolved by detection:
  // the map does not name it, so it rolled the installed state back.
  EXPECT_TRUE(cluster->mds(dst).fenced());
  EXPECT_EQ(cluster->mds(dst).stats().migrations_in, 0u);
  EXPECT_EQ(cluster->mds(dst).stats().migrations_rolled_back, 1u);
  // The exporter aborted and kept (or re-delegated within the majority)
  // every subtree; the corpse-to-be owns nothing new.
  EXPECT_EQ(cluster->mds(src).stats().migrations_out, 0u);
  const MdsId auth = cluster->mds(src).authority_for(home);
  EXPECT_NE(auth, dst);
  EXPECT_FALSE(cluster->mds(auth).fenced());
  expect_single_authority(*cluster, t0 + 14 * kSecond);

  cluster->network().heal();
  run_until(t0 + 20 * kSecond);
  EXPECT_FALSE(cluster->mds(dst).fenced());
  expect_single_authority(*cluster, t0 + 20 * kSecond);
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_EQ(cluster->mds(i).cache().check_invariants(), "") << i;
    EXPECT_EQ(cluster->mds(i).frozen_subtrees(), 0u) << i;
  }
}

TEST_F(ClusterPartitionTest, CutAfterCommitPointMajorityReclaimsSubtree) {
  build();
  FsNode* home = cluster->namespace_info().user_roots[0];
  for (FsNode* u : cluster->namespace_info().user_roots) {
    if (u->subtree_size() > home->subtree_size()) home = u;
  }
  const MdsId src = cluster->mds(0).authority_for(home);
  const MdsId dst = (src + 1) % cluster->num_mds();

  std::vector<FsNode*> stack{home};
  while (!stack.empty()) {
    FsNode* n = stack.back();
    stack.pop_back();
    maj_client.send(src, n->is_dir() ? OpType::kReaddir : OpType::kStat, n);
    if (n->is_dir()) {
      for (const auto& [_, c] : n->children()) stack.push_back(c.get());
    }
  }
  run_until(cluster->sim().now() + 5 * kSecond);
  const SimTime t0 = cluster->sim().now();

  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  // Step until the commit point (the shared map names the importer),
  // then exile the importer. It now owns a subtree the majority cannot
  // reach — precisely what the grace-delayed epoch takeover reclaims.
  for (int i = 0;
       i < 200000 && cluster->mds(0).authority_for(home) != dst; ++i) {
    run_until(cluster->sim().now() + from_micros(50));
  }
  ASSERT_EQ(cluster->mds(0).authority_for(home), dst);
  cluster->network().partition({{}, {dst, min_client.addr()}});

  run_until(t0 + 14 * kSecond);
  EXPECT_TRUE(cluster->mds(dst).fenced());
  // The majority re-delegated the exile's territory under epoch 2; the
  // imported subtree has exactly one live, unfenced authority again.
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster->partition());
  EXPECT_EQ(subtree->epoch(), 2u);
  const MdsId heir = subtree->authority_of(home);
  EXPECT_NE(heir, dst);
  EXPECT_FALSE(cluster->mds(heir).fenced());
  expect_single_authority(*cluster, t0 + 14 * kSecond);

  // Heal: the exile adopts epoch 2 and sheds the subtree it imported but
  // no longer owns.
  cluster->network().heal();
  run_until(t0 + 20 * kSecond);
  EXPECT_FALSE(cluster->mds(dst).fenced());
  EXPECT_EQ(cluster->mds(dst).view_epoch(), 2u);
  EXPECT_GT(cluster->mds(dst).stats().reconcile_dropped_items, 0u);
  expect_single_authority(*cluster, t0 + 20 * kSecond);
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_EQ(cluster->mds(i).cache().check_invariants(), "") << i;
  }
}

TEST_F(ClusterPartitionTest, DuplicatedSetattrAppliesExactlyOnce) {
  build();
  FsNode* home = cluster->namespace_info().user_roots[0];
  FsNode* file = file_child(home);
  ASSERT_NE(file, nullptr);
  const MdsId auth = cluster->mds(0).authority_for(file);

  // Every message on the client<->authority link is delivered twice.
  LinkFault f;
  f.duplicate = 1.0;
  cluster->network().set_link_fault(maj_client.addr(), auth, f);

  const std::uint64_t size_before = file->inode().size;
  const std::uint64_t id = maj_client.send(auth, OpType::kSetattr, file);
  run_until(cluster->sim().now() + kSecond);

  // The request-id high-water mark drops the clone; the attribute
  // advanced exactly once.
  ASSERT_NE(maj_client.reply_for(id), nullptr);
  EXPECT_TRUE(maj_client.reply_for(id)->success);
  EXPECT_EQ(file->inode().size, size_before + 1);
  EXPECT_EQ(cluster->mds(auth).stats().duplicate_updates_dropped, 1u);
}

TEST_F(ClusterPartitionTest, DuplicatedPrepareDoesNotDoubleImport) {
  build();
  FsNode* home = cluster->namespace_info().user_roots[0];
  for (FsNode* u : cluster->namespace_info().user_roots) {
    if (u->subtree_size() > home->subtree_size()) home = u;
  }
  const MdsId src = cluster->mds(0).authority_for(home);
  const MdsId dst = (src + 1) % cluster->num_mds();

  std::vector<FsNode*> stack{home};
  while (!stack.empty()) {
    FsNode* n = stack.back();
    stack.pop_back();
    maj_client.send(src, n->is_dir() ? OpType::kReaddir : OpType::kStat, n);
    if (n->is_dir()) {
      for (const auto& [_, c] : n->children()) stack.push_back(c.get());
    }
  }
  run_until(cluster->sim().now() + 5 * kSecond);

  // Duplicate every message of the migration handshake itself.
  LinkFault f;
  f.duplicate = 1.0;
  cluster->network().set_link_fault(src, dst, f);
  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  run_until(cluster->sim().now() + 5 * kSecond);

  // Exactly one import despite the cloned prepare/ack/commit: the map
  // flipped once and nothing rolled back or double-installed.
  EXPECT_EQ(cluster->mds(dst).stats().migrations_in, 1u);
  EXPECT_EQ(cluster->mds(dst).stats().migrations_rolled_back, 0u);
  EXPECT_EQ(cluster->mds(src).stats().migrations_out, 1u);
  EXPECT_EQ(cluster->mds(0).authority_for(home), dst);
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_EQ(cluster->mds(i).cache().check_invariants(), "") << i;
    EXPECT_EQ(cluster->mds(i).frozen_subtrees(), 0u) << i;
    EXPECT_FALSE(cluster->mds(i).migrating()) << i;
  }
}

// ---------------------------------------------------------------------------
// Scripted multi-seed chaos sweep
// ---------------------------------------------------------------------------

SimConfig sweep_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 4;
  cfg.num_clients = 120;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 32;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 30 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.client_retry.request_timeout = kSecond;
  return cfg;
}

FaultPlan sweep_plan() {
  // Clean minority cut (heals after the epoch takeover has run), then an
  // asymmetric one-way cut that self-heals inside the grace, then a
  // sub-second flap. Cuts land mid-run, so whatever migrations the
  // balancer has in flight get split too (cut-during-migration occurs
  // organically across the seeds).
  FaultPlan plan;
  plan.partition(8 * kSecond, 18 * kSecond, {{0, 2, 3}, {1}})
      .cut_link(20 * kSecond, 24 * kSecond, 2, 3)
      .cut_link(25 * kSecond, 25 * kSecond + 400 * kMillisecond, 0, 2)
      .cut_link(26 * kSecond, 26 * kSecond + 400 * kMillisecond, 0, 2);
  return plan;
}

class PartitionChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionChaosSweep, SingleAuthorityHoldsAtEveryCheckpoint) {
  ClusterSim cluster(sweep_config(GetParam()));
  cluster.run_until(0);
  sweep_plan().arm(cluster);

  const SimTime checkpoints[] = {
      6 * kSecond,  10 * kSecond, 13 * kSecond, 16 * kSecond, 19 * kSecond,
      22 * kSecond, 24 * kSecond, 26 * kSecond, 30 * kSecond};
  for (SimTime t : checkpoints) {
    cluster.run_until(t);
    expect_single_authority(cluster, t);
    for (int i = 0; i < cluster.num_mds(); ++i) {
      EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "")
          << "node " << i << " at t=" << to_seconds(t);
    }
  }

  // The minority node fenced during the split and recovered after heal.
  EXPECT_GE(cluster.mds(1).stats().fence_events, 1u);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_FALSE(cluster.mds(i).fenced()) << i;
    EXPECT_FALSE(cluster.mds(i).failed()) << i;
  }
  // The majority reconfigured exactly once (the clean cut); neither the
  // asymmetric cut nor the flaps lasted past the grace.
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
  ASSERT_NE(subtree, nullptr);
  EXPECT_GE(subtree->epoch(), 2u);
  for (const auto& fi : cluster.fault_log().fence_incidents()) {
    EXPECT_FALSE(fi.open) << "node " << fi.node;
  }
  // Cross-partition traffic was dropped and attributed as such.
  EXPECT_GT(cluster.network().partition_dropped(), 0u);

  // Nothing leaked: parked queues drained, no stuck takeovers.
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).parked_requests(), 0u) << i;
    EXPECT_EQ(cluster.mds(i).pending_takeovers(), 0u) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionChaosSweep,
                         ::testing::Values(1u, 42u, 1234u));

TEST(PartitionDeterminism, SameSeedSameScheduleIsBitForBit) {
  auto run = []() {
    ClusterSim cluster(sweep_config(42));
    cluster.run_until(0);
    sweep_plan().arm(cluster);
    cluster.run_until(30 * kSecond);

    std::vector<double> tput;
    for (const auto& p : cluster.metrics().avg_throughput().points()) {
      tput.push_back(p.value);
    }
    std::uint64_t completed = 0, retries = 0, stale = 0;
    for (int c = 0; c < cluster.num_clients(); ++c) {
      const ClientStats& s = cluster.client(c).stats();
      completed += s.ops_completed;
      retries += s.retries;
      stale += s.stale_replies;
    }
    std::uint64_t fences = 0, parked = 0, rejects = 0, deferred = 0;
    for (int i = 0; i < cluster.num_mds(); ++i) {
      const MdsStats& s = cluster.mds(i).stats();
      fences += s.fence_events;
      parked += s.writes_parked_fenced;
      rejects += s.stale_epoch_rejects;
      deferred += s.takeovers_deferred;
    }
    auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
    return std::make_tuple(tput, completed, retries, stale, fences, parked,
                           rejects, deferred, subtree->epoch(),
                           cluster.network().partition_dropped(),
                           cluster.metrics().total_replies());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mdsim

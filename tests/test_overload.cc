// Overload protection (mds/admission.h + the gate in mds_node.cc).
//
// The contracts under test:
//  - the token bucket and retry budget are pure deterministic arithmetic;
//  - a burst beyond the bounded queue is shed with an explicit
//    Rejected{retry_after} reply, and every shed is accounted identically
//    in MdsStats, Metrics, and the FaultLog;
//  - forwarded requests (hops > 0) face the destination's queue bounds —
//    local backpressure — but are not charged admission tokens twice;
//  - dead-on-arrival requests (deadline passed) are dropped silently;
//  - with protection disabled, or enabled with vacuous limits, a run is
//    byte-identical to the stock simulation (zero-cost-off).
#include <gtest/gtest.h>

#include <limits>

#include "client/retry_policy.h"
#include "core/cluster.h"
#include "core/experiment.h"
#include "core/sharded_cluster.h"
#include "mds/admission.h"
#include "test_util.h"

namespace mdsim {
namespace {

// --- pure arithmetic -----------------------------------------------------

TEST(TokenBucket, RefillIsLinearAndCappedAtBurst) {
  TokenBucket b;
  b.init(/*rate=*/100.0, /*burst=*/10.0, /*now=*/0);
  EXPECT_DOUBLE_EQ(b.tokens(0), 10.0);
  EXPECT_TRUE(b.try_take(10.0, 0.0, 0));  // drain the burst
  EXPECT_FALSE(b.try_take(1.0, 0.0, 0));
  // 50 ms at 100 tokens/s refills exactly 5.
  EXPECT_NEAR(b.tokens(50 * kMillisecond), 5.0, 1e-9);
  // A long quiet interval refills to burst, never beyond.
  EXPECT_NEAR(b.tokens(10 * kSecond), 10.0, 1e-9);
}

TEST(TokenBucket, ReserveBlocksRetriesButNotFreshRequests) {
  TokenBucket b;
  b.init(/*rate=*/0.0, /*burst=*/4.0, /*now=*/0);  // no refill: pure spend
  // A retried request spends only the surplus above the reserve.
  EXPECT_TRUE(b.try_take(1.0, 2.0, 0));   // 4 -> 3
  EXPECT_FALSE(b.try_take(2.0, 2.0, 0));  // 3 - 2 would dip below 2
  // Fresh requests (reserve 0) may spend the bucket down to zero.
  EXPECT_TRUE(b.try_take(2.0, 0.0, 0));  // 3 -> 1
  EXPECT_TRUE(b.try_take(1.0, 0.0, 0));  // 1 -> 0
  EXPECT_FALSE(b.try_take(1.0, 0.0, 0));
}

TEST(RetryBudget, SpendEarnCapAndDisabledBypass) {
  RetryBudgetParams p;
  p.enabled = true;
  p.ratio = 0.5;
  p.cap = 2.0;
  RetryBudget b;
  b.init(p);
  EXPECT_TRUE(b.try_spend(p));   // 2 -> 1
  EXPECT_TRUE(b.try_spend(p));   // 1 -> 0
  EXPECT_FALSE(b.try_spend(p));  // dry: fail fast
  b.earn(p);                     // 0.5 — still below one whole token
  EXPECT_FALSE(b.try_spend(p));
  b.earn(p);  // 1.0
  EXPECT_TRUE(b.try_spend(p));
  for (int i = 0; i < 10; ++i) b.earn(p);
  EXPECT_DOUBLE_EQ(b.tokens, p.cap);  // earns saturate at the cap

  RetryBudgetParams off;  // disabled: always allowed, nothing spent
  RetryBudget c;
  c.init(off);
  c.tokens = 0.0;
  EXPECT_TRUE(c.try_spend(off));
}

TEST(FaultLogOverload, ShedsCoalesceIntoEpisodesAcrossQuietGaps) {
  FaultLog log;
  log.note_shed(0, 1 * kSecond);
  log.note_shed(0, 1 * kSecond + 200 * kMillisecond);  // same episode
  log.note_shed(0, 3 * kSecond);  // > 1 s quiet: new episode
  EXPECT_EQ(log.total_sheds(), 3u);
  const Summary s = log.overload_episode_seconds(4 * kSecond);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_NEAR(s.sum(), 0.2, 1e-9);  // 0.2 s span + a zero-length episode
  // Episodes are per node: a shed elsewhere opens its own incident.
  log.note_shed(1, 3 * kSecond);
  EXPECT_EQ(log.overload_episode_seconds(4 * kSecond).count(), 3u);
}

// --- cluster-level shedding ----------------------------------------------

/// Hand-driven cluster with slow request service (bursts pile up) and a
/// tight CPU depth bound; the token bucket and backlog bound are off so
/// each test isolates one mechanism.
SimConfig gate_config(int num_mds) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree, num_mds);
  cfg.mds.cpu_request = 10 * kMillisecond;
  cfg.mds.cpu_per_component = 0;
  cfg.mds.overload.enabled = true;
  cfg.mds.overload.max_cpu_queue_depth = 2;
  cfg.mds.overload.max_cpu_queue_delay = 0;  // depth bound only
  cfg.mds.overload.admit_rate = 0.0;         // no bucket
  return cfg;
}

TEST(OverloadGate, BurstBeyondQueueBoundShedsWithRetryAfter) {
  ClusterSim cluster(gate_config(1));
  TestClient tc;
  tc.attach(cluster);
  FsNode* f = find_world_readable_file(cluster.tree());
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 10; ++i) tc.send(0, OpType::kStat, f);
  cluster.run_until(5 * kSecond);

  // Every request is answered: admitted ones succeed (eventually),
  // shed ones get an immediate explicit rejection.
  ASSERT_EQ(tc.replies.size(), 10u);
  std::uint64_t ok = 0, rejected = 0;
  for (const ClientReplyMsg& r : tc.replies) {
    if (r.rejected) {
      ++rejected;
      EXPECT_FALSE(r.success);
      EXPECT_GE(r.retry_after, cluster.config().mds.overload.retry_after_base);
    } else {
      EXPECT_TRUE(r.success);
      ++ok;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(rejected, 0u);

  // One shed, one reject, one fault-log entry — everywhere the same count.
  const MdsStats& st = cluster.mds(0).stats();
  EXPECT_EQ(st.requests_shed_queue, rejected);
  EXPECT_EQ(st.requests_shed_admission, 0u);
  EXPECT_EQ(st.requests_shed_deadline, 0u);
  EXPECT_EQ(st.rejects_sent, rejected);
  EXPECT_EQ(cluster.fault_log().total_sheds(), rejected);
  EXPECT_EQ(cluster.metrics().total_sheds(), rejected);
  EXPECT_EQ(cluster.metrics().total_rejects(), rejected);
  // The depth observer saw the burst.
  EXPECT_GE(cluster.metrics().cpu_queue_highwater(), 2u);
}

/// World-readable file whose path authority is `want` (so a request sent
/// straight there is served locally, and one sent elsewhere forwards).
FsNode* file_with_authority(ClusterSim& cluster, MdsId want,
                            std::size_t skip = 0) {
  for (std::size_t i = 0;; ++i) {
    FsNode* f = find_world_readable_file(cluster.tree(), i);
    if (f == nullptr) return nullptr;
    if (cluster.partition().authority_of(f) != want) continue;
    if (skip > 0) {
      --skip;
      continue;
    }
    return f;
  }
}

TEST(OverloadGate, ForwardedArrivalsFaceTheAuthoritysQueueBound) {
  ClusterSim cluster(gate_config(3));
  TestClient tc;
  tc.attach(cluster);
  FsNode* hot = file_with_authority(cluster, 1);
  ASSERT_NE(hot, nullptr);

  // Saturate the authority directly, then route one request through node
  // 0, which forwards it (hops = 1) into the full queue at node 1.
  for (int i = 0; i < 10; ++i) tc.send(1, OpType::kStat, hot);
  const std::uint64_t via_peer = tc.send(0, OpType::kStat, hot);
  cluster.run_until(5 * kSecond);

  EXPECT_GE(cluster.mds(0).stats().forwards, 1u);
  EXPECT_GT(cluster.mds(1).stats().requests_shed_queue, 0u);
  // The forwarded request was shed at the authority and the rejection
  // travelled straight back to the client, carrying its hop count.
  const ClientReplyMsg* r = tc.reply_for(via_peer);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->rejected);
  EXPECT_EQ(r->hops, 1u);
  // Cluster totals aggregate both nodes' counters.
  EXPECT_EQ(cluster.metrics().total_sheds(),
            cluster.mds(0).stats().requests_shed_queue +
                cluster.mds(1).stats().requests_shed_queue +
                cluster.mds(2).stats().requests_shed_queue);
}

TEST(OverloadGate, DeadRequestsAreDroppedSilently) {
  SimConfig cfg = gate_config(1);
  cfg.mds.overload.max_cpu_queue_depth = 1000;  // only the deadline acts
  ClusterSim cluster(cfg);
  TestClient tc;
  tc.attach(cluster);
  FsNode* f = find_world_readable_file(cluster.tree());
  ASSERT_NE(f, nullptr);
  cluster.run_until(1 * kSecond);

  // A request whose deadline passes in flight: the client timed out
  // before the arrival, so the server drops it without a reply.
  auto msg = std::make_unique<ClientRequestMsg>();
  msg->req_id = 1;
  msg->client = 9999;
  msg->client_addr = tc.addr();
  msg->op = OpType::kStat;
  msg->target = f->ino();
  msg->deadline = cluster.sim().now();  // already stale on arrival
  cluster.network().send(tc.addr(), 0, std::move(msg));
  cluster.run_until(2 * kSecond);

  EXPECT_TRUE(tc.replies.empty());
  const MdsStats& st = cluster.mds(0).stats();
  EXPECT_EQ(st.requests_shed_deadline, 1u);
  EXPECT_EQ(st.rejects_sent, 0u);
  EXPECT_EQ(cluster.fault_log().total_sheds(), 1u);
}

TEST(OverloadGate, BucketReserveShedsRetriesAndPricesWrites) {
  SimConfig cfg = gate_config(1);
  cfg.mds.overload.max_cpu_queue_depth = 1000;  // only the bucket acts
  cfg.mds.overload.admit_rate = 1e-9;           // no meaningful refill
  cfg.mds.overload.admit_burst = 2.0;
  cfg.mds.overload.retry_reserve = 0.5;  // reserve = 1 token
  cfg.mds.overload.write_cost = 2.0;
  ClusterSim cluster(cfg);
  TestClient tc;
  tc.attach(cluster);
  FsNode* f = find_world_readable_file(cluster.tree());
  ASSERT_NE(f, nullptr);

  auto send = [&](std::uint64_t req_id, OpType op, std::uint8_t attempt) {
    auto msg = std::make_unique<ClientRequestMsg>();
    msg->req_id = req_id;
    msg->client = 9999;
    msg->client_addr = tc.addr();
    msg->op = op;
    msg->target = f->ino();
    msg->attempt = attempt;
    cluster.network().send(tc.addr(), 0, std::move(msg));
  };
  // Same-instant burst, handled in send order. Bucket holds 2 tokens:
  //   fresh stat        cost 1, reserve 0 -> admit (1 left)
  //   retried stat      cost 1, reserve 1 -> shed  (would hit the reserve)
  //   fresh setattr     cost 2, reserve 0 -> shed  (write price > balance)
  //   fresh stat        cost 1, reserve 0 -> admit (0 left)
  //   fresh stat        cost 1, reserve 0 -> shed  (empty)
  send(1, OpType::kStat, 0);
  send(2, OpType::kStat, 1);
  send(3, OpType::kSetattr, 0);
  send(4, OpType::kStat, 0);
  send(5, OpType::kStat, 0);
  cluster.run_until(5 * kSecond);

  ASSERT_EQ(tc.replies.size(), 5u);
  EXPECT_FALSE(tc.reply_for(1)->rejected);
  EXPECT_TRUE(tc.reply_for(2)->rejected);
  EXPECT_TRUE(tc.reply_for(3)->rejected);
  EXPECT_FALSE(tc.reply_for(4)->rejected);
  EXPECT_TRUE(tc.reply_for(5)->rejected);
  const MdsStats& st = cluster.mds(0).stats();
  EXPECT_EQ(st.requests_shed_admission, 3u);
  EXPECT_EQ(st.requests_shed_queue, 0u);
}

// --- zero-cost-off -------------------------------------------------------

SimConfig loaded_config() {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 3;
  cfg.num_clients = 60;
  cfg.fs.num_users = 12;
  cfg.fs.nodes_per_user = 150;
  cfg.duration = 6 * kSecond;
  cfg.warmup = 2 * kSecond;
  return cfg;
}

/// Protection enabled but with limits no request can hit: the same
/// configuration the fig benches' --overload-noop flag uses to prove the
/// gate costs nothing when it never fires.
void make_vacuous(OverloadParams* ov) {
  ov->enabled = true;
  ov->max_cpu_queue_depth = std::numeric_limits<std::size_t>::max();
  ov->max_cpu_queue_delay = 0;
  ov->max_disk_queue_depth = std::numeric_limits<std::size_t>::max();
  ov->admit_rate = 0.0;
  ov->deadline_drop = false;
}

TEST(OverloadGate, VacuousLimitsAreByteIdenticalToDisabled) {
  ClusterSim off(loaded_config());
  off.run();
  SimConfig noop_cfg = loaded_config();
  make_vacuous(&noop_cfg.mds.overload);
  ClusterSim noop(noop_cfg);
  noop.run();

  EXPECT_GT(off.metrics().total_replies(), 1000u);
  EXPECT_EQ(off.metrics().total_replies(), noop.metrics().total_replies());
  EXPECT_EQ(off.metrics().total_failures(), noop.metrics().total_failures());
  EXPECT_EQ(off.metrics().cluster_hit_rate(),
            noop.metrics().cluster_hit_rate());
  EXPECT_EQ(off.metrics().client_latency().sum(),
            noop.metrics().client_latency().sum());
  EXPECT_EQ(off.sim().events_executed(), noop.sim().events_executed());
  EXPECT_EQ(noop.metrics().total_sheds(), 0u);
  EXPECT_EQ(noop.metrics().total_rejects(), 0u);
}

// --- sharded engine ------------------------------------------------------

RunResult run_sharded_overloaded(int threads) {
  SimConfig cfg;
  cfg.num_mds = 4;
  cfg.num_clients = 40;
  cfg.fs.num_users = 4;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 400 * kMillisecond;
  cfg.warmup = 100 * kMillisecond;
  cfg.shards = 2;
  cfg.threads = threads;
  cfg.general.mean_think = 1 * kMillisecond;  // hammer: offered >> admitted
  cfg.mds.overload.enabled = true;
  cfg.mds.overload.admit_rate = 100.0;
  cfg.mds.overload.admit_burst = 8.0;
  cfg.client_retry.budget.enabled = true;
  cfg.client_retry.budget.cap = 4.0;
  ShardedClusterSim cluster(cfg);
  cluster.run();
  return cluster.result();
}

TEST(OverloadGate, ShardedResultsWithSheddingAreThreadCountInvariant) {
  const RunResult r1 = run_sharded_overloaded(1);
  const RunResult r2 = run_sharded_overloaded(2);
  // The gate fired (budget-dry clients fail fast) and still produced
  // goodput; admission is pure arithmetic, so thread count changes nothing.
  EXPECT_GT(r1.replies, 0u);
  EXPECT_GT(r1.failures, 0u);
  EXPECT_EQ(r1.replies, r2.replies);
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.mean_latency_ms, r2.mean_latency_ms);
  EXPECT_EQ(r1.hit_rate, r2.hit_rate);
}

}  // namespace
}  // namespace mdsim

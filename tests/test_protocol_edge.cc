// Protocol edge cases: op-level semantics the big workloads exercise only
// statistically — pinned here deterministically.
#include <gtest/gtest.h>

#include "test_util.h"

namespace mdsim {
namespace {

class ProtocolEdgeTest : public ::testing::Test {
 protected:
  void build(StrategyKind strategy = StrategyKind::kDynamicSubtree) {
    cluster = std::make_unique<ClusterSim>(manual_config(strategy));
    client.attach(*cluster);
    tree = &cluster->tree();
  }
  void run_for(SimTime dt) { cluster->run_until(cluster->sim().now() + dt); }
  MdsId auth_of(FsNode* n) { return cluster->mds(0).authority_for(n); }

  std::unique_ptr<ClusterSim> cluster;
  TestClient client;
  FsTree* tree = nullptr;
};

TEST_F(ProtocolEdgeTest, StatAndReaddirOfRoot) {
  build();
  client.send(auth_of(tree->root()), OpType::kStat, tree->root());
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
  client.send(auth_of(tree->root()), OpType::kReaddir, tree->root());
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
}

TEST_F(ProtocolEdgeTest, ReaddirOfFileFails) {
  build();
  FsNode* f = find_world_readable_file(*tree);
  ASSERT_NE(f, nullptr);
  client.send(auth_of(f), OpType::kReaddir, f);
  run_for(kSecond);
  EXPECT_FALSE(client.last().success);
}

TEST_F(ProtocolEdgeTest, RmdirOfNonEmptyDirFails) {
  build();
  FsNode* dir = cluster->namespace_info().user_roots[0];
  ASSERT_GT(dir->child_count(), 0u);
  client.send(auth_of(dir), OpType::kRmdir, dir);
  run_for(kSecond);
  EXPECT_FALSE(client.last().success);
  EXPECT_TRUE(tree->alive(dir));
}

TEST_F(ProtocolEdgeTest, MkdirThenRmdirRoundTrip) {
  build();
  FsNode* dir = cluster->namespace_info().user_roots[1];
  client.send(auth_of(dir), OpType::kMkdir, dir, "fresh_dir");
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  FsNode* fresh = dir->child("fresh_dir");
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->is_dir());
  client.send(auth_of(fresh), OpType::kRmdir, fresh);
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
  EXPECT_EQ(dir->child("fresh_dir"), nullptr);
}

TEST_F(ProtocolEdgeTest, RenameWithinDirectory) {
  build();
  FsNode* dir = cluster->namespace_info().user_roots[2];
  client.send(auth_of(dir), OpType::kCreate, dir, "before_name");
  run_for(kSecond);
  FsNode* f = dir->child("before_name");
  ASSERT_NE(f, nullptr);
  const InodeId ino = f->ino();
  client.send(auth_of(f), OpType::kRename, f, "after_name", dir);
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
  EXPECT_EQ(dir->child("before_name"), nullptr);
  ASSERT_NE(dir->child("after_name"), nullptr);
  EXPECT_EQ(dir->child("after_name")->ino(), ino);
}

TEST_F(ProtocolEdgeTest, RenameOntoExistingNameFails) {
  build();
  FsNode* dir = cluster->namespace_info().user_roots[2];
  client.send(auth_of(dir), OpType::kCreate, dir, "occupant");
  run_for(kSecond);
  client.send(auth_of(dir), OpType::kCreate, dir, "mover");
  run_for(kSecond);
  FsNode* mover = dir->child("mover");
  ASSERT_NE(mover, nullptr);
  client.send(auth_of(mover), OpType::kRename, mover, "occupant", dir);
  run_for(kSecond);
  EXPECT_FALSE(client.last().success);
  EXPECT_NE(dir->child("mover"), nullptr);
}

TEST_F(ProtocolEdgeTest, UnlinkOfHardLinkedFileFails) {
  build();
  FsNode* dir = cluster->namespace_info().user_roots[3];
  client.send(auth_of(dir), OpType::kCreate, dir, "linked");
  run_for(kSecond);
  FsNode* f = dir->child("linked");
  ASSERT_NE(f, nullptr);
  FsNode* other = cluster->namespace_info().user_roots[4];
  client.send(auth_of(other), OpType::kLink, other, "hl", f);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  // The primary cannot be unlinked while the remote link exists.
  client.send(auth_of(f), OpType::kUnlink, f);
  run_for(kSecond);
  EXPECT_FALSE(client.last().success);
  EXPECT_TRUE(tree->alive(f));
}

TEST_F(ProtocolEdgeTest, ChmodTogglesAccessibility) {
  build();
  FsNode* dir = cluster->namespace_info().user_roots[5];
  if (dir->inode().perms.mode != 0755) GTEST_SKIP() << "home is private";
  FsNode* f = nullptr;
  for (const auto& [_, c] : dir->children()) {
    if (!c->is_dir()) f = c.get();
  }
  if (f == nullptr) GTEST_SKIP() << "no top-level file";
  // A stranger can stat while the dir is world-traversable...
  client.send(auth_of(f), OpType::kStat, f, "", nullptr, 9999);
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
  // ...chmod flips it private...
  client.send(auth_of(dir), OpType::kChmod, dir, "", nullptr,
              dir->inode().perms.uid);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  EXPECT_EQ(dir->inode().perms.mode, 0700);
  client.send(auth_of(f), OpType::kStat, f, "", nullptr, 9999);
  run_for(kSecond);
  EXPECT_FALSE(client.last().success);
  // ...but the owner still gets through.
  client.send(auth_of(f), OpType::kStat, f, "", nullptr,
              dir->inode().perms.uid);
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
}

TEST_F(ProtocolEdgeTest, SetattrBumpsVersionAndInvalidates) {
  build();
  FsNode* f = find_world_readable_file(*tree, 7);
  ASSERT_NE(f, nullptr);
  const std::uint64_t v = f->inode().version;
  client.send(auth_of(f), OpType::kSetattr, f);
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
  EXPECT_GT(f->inode().version, v);
}

TEST_F(ProtocolEdgeTest, WritebackBatchingCoalescesPerDirectory) {
  // 120 creates into one directory must cost far fewer tier-2 writes than
  // 120 transactions (shared B+tree nodes, 50 ms batch window).
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.journal_capacity = 16;  // everything expires promptly
  cfg.mds.dirfrag_enabled = false;
  cluster = std::make_unique<ClusterSim>(cfg);
  client.attach(*cluster);
  tree = &cluster->tree();
  FsNode* dir = cluster->namespace_info().user_roots[6];
  const MdsId auth = auth_of(dir);
  const std::uint64_t writes_before = cluster->mds(auth).disk().writes();
  for (int i = 0; i < 120; ++i) {
    client.send(auth, OpType::kCreate, dir, "wb" + std::to_string(i));
    run_for(2 * kMillisecond);
  }
  run_for(kSecond);
  const std::uint64_t writes = cluster->mds(auth).disk().writes() -
                               writes_before;
  EXPECT_GT(writes, 0u);
  EXPECT_LT(writes, 40u);  // ~104 expiries coalesced into batches
}

TEST_F(ProtocolEdgeTest, ForwardedCreateStillReturnsHints) {
  build();
  FsNode* dir = cluster->namespace_info().user_roots[7];
  const MdsId wrong = (auth_of(dir) + 1) % cluster->num_mds();
  client.send(wrong, OpType::kCreate, dir, "via_forward");
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  EXPECT_EQ(client.last().hops, 1);
  EXPECT_FALSE(client.last().hints.empty());
  EXPECT_NE(dir->child("via_forward"), nullptr);
}

TEST_F(ProtocolEdgeTest, LazyHybridUpdatesCostTargetFetch) {
  build(StrategyKind::kLazyHybrid);
  FsNode* f = find_world_readable_file(*tree, 11);
  ASSERT_NE(f, nullptr);
  const MdsId auth = auth_of(f);
  const std::uint64_t reads_before = cluster->mds(auth).disk().reads();
  client.send(auth, OpType::kSetattr, f);
  run_for(kSecond);
  EXPECT_TRUE(client.last().success);
  // The cold target had to be fetched (one scattered-inode read) before
  // the update could be serialized.
  EXPECT_GT(cluster->mds(auth).disk().reads(), reads_before);
}

}  // namespace
}  // namespace mdsim

// Crash-consistent migration (the double-commit under fire) and the
// restart lifecycle. The matrix kills the exporter or the importer at
// every interesting point of the transaction and checks that exactly one
// node ends up the authority, with no frozen subtrees or leaked deferred
// requests left behind.
#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"

namespace mdsim {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void build(std::uint64_t seed = 42) {
    SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree, 3, seed);
    cfg.mds.min_migration_items = 2;
    cluster = std::make_unique<ClusterSim>(cfg);
    client.attach(*cluster);
  }

  void run_for(SimTime dt) { cluster->run_until(cluster->sim().now() + dt); }

  /// Warm the authority's cache for every item under `root`.
  void warm_subtree(FsNode* root) {
    std::vector<FsNode*> stack{root};
    while (!stack.empty()) {
      FsNode* n = stack.back();
      stack.pop_back();
      client.send(cluster->mds(0).authority_for(n),
                  n->is_dir() ? OpType::kReaddir : OpType::kStat, n);
      if (n->is_dir()) {
        for (const auto& [_, c] : n->children()) stack.push_back(c.get());
      }
    }
    run_for(5 * kSecond);
  }

  /// Largest user home (non-trivial transferred state) plus its src/dst.
  FsNode* pick_home(MdsId* src, MdsId* dst) {
    FsNode* home = cluster->namespace_info().user_roots[0];
    for (FsNode* u : cluster->namespace_info().user_roots) {
      if (u->subtree_size() > home->subtree_size()) home = u;
    }
    *src = cluster->mds(0).authority_for(home);
    *dst = (*src + 1) % cluster->num_mds();
    return home;
  }

  void expect_clean(MdsId skip = kInvalidMds) {
    for (int i = 0; i < cluster->num_mds(); ++i) {
      if (i == skip) continue;
      EXPECT_EQ(cluster->mds(i).cache().check_invariants(), "") << i;
      EXPECT_EQ(cluster->mds(i).frozen_subtrees(), 0u) << i;
      EXPECT_EQ(cluster->mds(i).deferred_requests(), 0u) << i;
      EXPECT_FALSE(cluster->mds(i).migrating()) << i;
    }
  }

  std::unique_ptr<ClusterSim> cluster;
  TestClient client;
};

TEST_F(RecoveryTest, ImporterDeadBeforePrepareAbortsCleanly) {
  build();
  MdsId src, dst;
  FsNode* home = pick_home(&src, &dst);
  warm_subtree(home);

  // The importer dies; the exporter does not know yet and initiates a
  // migration towards the corpse. The prepare is dropped on the floor and
  // no ack ever comes: the watchdog (or the death detection) aborts, the
  // subtree unfreezes, and the exporter never stopped being authority.
  cluster->fail_mds(dst);
  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  EXPECT_EQ(cluster->mds(src).frozen_subtrees(), 1u);

  run_for(6 * kSecond);
  EXPECT_EQ(cluster->mds(src).stats().migrations_aborted, 1u);
  EXPECT_EQ(cluster->mds(src).stats().migrations_out, 0u);
  EXPECT_EQ(cluster->mds(0).authority_for(home), src);
  expect_clean(dst);
}

TEST_F(RecoveryTest, ExporterDeadBeforeCommitPointRollsBackImporter) {
  build();
  MdsId src, dst;
  FsNode* home = pick_home(&src, &dst);
  warm_subtree(home);

  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  // Step in fine increments until the prepare has landed (the importer
  // records the inbound transaction the instant it arrives), then kill
  // the exporter before it can process the ack. The commit point was
  // never passed: the partition still names the exporter.
  for (int i = 0; i < 10000 && !cluster->mds(dst).migrating(); ++i) {
    run_for(from_micros(50));
  }
  ASSERT_TRUE(cluster->mds(dst).migrating());
  cluster->fail_mds(src);
  ASSERT_EQ(cluster->mds(0).authority_for(home), src);  // never flipped

  // The importer resolves by timeout/detection: the map does not name it,
  // so it rolls the installed state back. The dead exporter's territory
  // (including this subtree) is then taken over by the survivors after
  // the quorum-takeover grace.
  run_for(12 * kSecond);
  EXPECT_EQ(cluster->mds(dst).stats().migrations_in, 0u);
  EXPECT_EQ(cluster->mds(dst).stats().migrations_rolled_back, 1u);
  const MdsId final_auth = cluster->mds(0).authority_for(home);
  EXPECT_NE(final_auth, src);  // takeover moved it off the corpse
  expect_clean(src);
}

TEST_F(RecoveryTest, ExporterDeadAfterCommitPointImporterFinalizes) {
  build();
  MdsId src, dst;
  FsNode* home = pick_home(&src, &dst);
  warm_subtree(home);

  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  // Step until the partition flips (the exporter processed the ack —
  // THE commit point), then kill the exporter inside the journal-append
  // window before the Commit message leaves.
  for (int i = 0;
       i < 200000 && cluster->mds(0).authority_for(home) != dst; ++i) {
    run_for(from_micros(50));
  }
  ASSERT_EQ(cluster->mds(0).authority_for(home), dst);
  cluster->fail_mds(src);

  // The commit never arrives, but the importer's resolution consults the
  // shared partition map, finds itself the authority, and finalizes.
  run_for(8 * kSecond);
  EXPECT_EQ(cluster->mds(dst).stats().migrations_in, 1u);
  EXPECT_EQ(cluster->mds(dst).stats().migrations_rolled_back, 0u);
  EXPECT_EQ(cluster->mds(0).authority_for(home), dst);
  EXPECT_GT(cluster->mds(dst).imported_subtrees().count(home->ino()), 0u);
  expect_clean(src);
}

TEST_F(RecoveryTest, ImporterDeadAfterAckSurvivorsInheritSubtree) {
  build();
  MdsId src, dst;
  FsNode* home = pick_home(&src, &dst);
  warm_subtree(home);

  ASSERT_TRUE(cluster->mds(src).migrate_subtree(home, dst));
  for (int i = 0;
       i < 200000 && cluster->mds(0).authority_for(home) != dst; ++i) {
    run_for(from_micros(50));
  }
  ASSERT_EQ(cluster->mds(0).authority_for(home), dst);
  // The importer dies right after the authority flipped to it.
  cluster->fail_mds(dst);

  // Survivors detect the death and — after the takeover grace —
  // redistribute the importer's delegations, the freshly imported
  // subtree included. Exactly one live authority remains.
  run_for(12 * kSecond);
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster->partition());
  ASSERT_NE(subtree, nullptr);
  EXPECT_TRUE(subtree->delegations_of(dst).empty());
  const MdsId final_auth = cluster->mds(0).authority_for(home);
  EXPECT_NE(final_auth, dst);
  EXPECT_FALSE(cluster->mds(final_auth).failed());
  expect_clean(dst);
}

TEST_F(RecoveryTest, RestartReplaysJournalWithRealDiskLatency) {
  build();
  MdsId src, dst;
  FsNode* home = pick_home(&src, &dst);
  warm_subtree(home);
  // Dirty some metadata so the bounded journal has a working set to
  // replay on restart.
  for (const auto& [_, c] : home->children()) {
    client.send(src, OpType::kSetattr, c.get());
  }
  run_for(2 * kSecond);
  ASSERT_GT(cluster->mds(src).journal().live_entries(), 0u);

  cluster->fail_mds(src);
  run_for(10 * kSecond);  // detected + grace elapsed + taken over
  const std::uint64_t reads_before = cluster->mds(src).disk().reads();
  cluster->recover_mds(src);
  EXPECT_TRUE(cluster->mds(src).recovering());
  run_for(4 * kSecond);
  EXPECT_FALSE(cluster->mds(src).recovering());
  // The replay performed real I/O on the restarting node.
  EXPECT_GT(cluster->mds(src).disk().reads(), reads_before);

  // Rejoin restored the node as a live peer everywhere (the liveness view
  // is symmetric again).
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_TRUE(cluster->mds(i).peer_alive(src)) << i;
  }
  const auto& incidents = cluster->fault_log().incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_FALSE(incidents[0].open);
  EXPECT_TRUE(incidents[0].has(incidents[0].rejoined_at));
  expect_clean();
}

}  // namespace
}  // namespace mdsim

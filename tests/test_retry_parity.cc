// Retry parity: the standalone Client and the SoA ClientCohort implement
// one retry protocol (client/retry_policy.h). Against identical servers —
// a black hole, an overload rejector, a too-slow replier — a cohort of
// one must produce the same attempt pattern, the same budget accounting,
// and the same pacing as a standalone client, within the timer wheel's
// quantization (the cohort's only structural difference).
//
// The two implementations draw from different RNG substreams, so exact
// event times differ by backoff jitter; everything asserted here is
// jitter-independent (attempt sequences, budget counts) or bounded by
// the jitter interval (inter-arrival gaps).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "client/client.h"
#include "client/cohort.h"
#include "client/retry_policy.h"
#include "fstree/generator.h"
#include "mds/dirfrag.h"
#include "mds/messages.h"
#include "net/network.h"
#include "strategy/partition.h"
#include "workload/workload.h"

namespace mdsim {
namespace {

constexpr std::uint64_t kSeed = 7;
constexpr SimTime kLatency = from_micros(100);
/// The cohort wheel uses millisecond buckets, rounding each timer up by
/// < 1 ms; a retry chains two timers (timeout, then backoff), so 3 ms
/// absorbs the quantization with margin without weakening the gap bounds.
constexpr SimTime kSlack = 3 * kMillisecond;

/// Stat the same file forever with a fixed think time: no RNG draws, so
/// the op stream is identical for both client implementations.
struct FixedWorkload final : Workload {
  FsNode* target = nullptr;
  /// Large against the cohort wheel's 1 ms buckets, so quantization
  /// stretches a cycle by a few percent, not a factor.
  SimTime think = 10 * kMillisecond;
  SimTime next(ClientId, SimTime, Rng&, Operation* out) override {
    out->op = OpType::kStat;
    out->target = target;
    return think;
  }
  std::string name() const override { return "fixed"; }
};

struct Arrival {
  SimTime at = 0;
  std::uint8_t attempt = 0;
  std::uint64_t req_id = 0;
};

/// Records every request and never answers: sustained timeouts.
struct Blackhole : NetEndpoint {
  Simulation* sim = nullptr;
  Network* net = nullptr;
  NetAddr addr = kInvalidAddr;
  std::vector<Arrival> arrivals;

  void on_message(NetAddr, MessagePtr msg) override {
    if (msg->type != MsgType::kClientRequest) return;
    auto& m = static_cast<ClientRequestMsg&>(*msg);
    arrivals.push_back({sim->now(), m.attempt, m.req_id});
    answer(m);
  }
  virtual void answer(const ClientRequestMsg&) {}
};

/// Rejects everything immediately with a fixed retry_after hint.
struct Rejector final : Blackhole {
  SimTime retry_after = 40 * kMillisecond;
  void answer(const ClientRequestMsg& m) override {
    auto reply = std::make_unique<ClientReplyMsg>();
    reply->req_id = m.req_id;
    reply->success = false;
    reply->rejected = true;
    reply->retry_after = retry_after;
    net->send(addr, m.client_addr, std::move(reply));
  }
};

/// Succeeds, but only after the client has already timed out and
/// re-issued: every reply must land in the stale branch.
struct SlowReplier final : Blackhole {
  SimTime delay = 250 * kMillisecond;
  void answer(const ClientRequestMsg& m) override {
    sim->schedule(delay, [this, id = m.req_id, to = m.client_addr]() {
      auto reply = std::make_unique<ClientReplyMsg>();
      reply->req_id = id;
      reply->success = true;
      net->send(addr, to, std::move(reply));
    });
  }
};

struct RunOutcome {
  ClientStats stats;
  std::vector<Arrival> arrivals;
};

/// Build a one-client, one-server world around `server` and run it. The
/// server attaches first, taking address 0 — where a num_mds=1 client
/// sends everything — and `cohort` selects which implementation drives
/// the traffic.
template <typename Server>
RunOutcome run_world(bool cohort, const ClientRetryParams& rp,
                     SimTime horizon) {
  Simulation sim;
  NetworkParams np;
  np.base_latency = kLatency;
  np.jitter_mean = 0;
  Network net(sim, np);

  FsTree tree;
  NamespaceParams fs;
  fs.seed = kSeed;
  fs.num_users = 4;
  fs.nodes_per_user = 60;
  generate_namespace(tree, fs);
  auto partition = make_partitioner(StrategyKind::kDynamicSubtree, 1, tree);
  DirFragRegistry dirfrag(1, 6);
  FixedWorkload workload;
  workload.target = tree.files().front();

  Server server;
  server.sim = &sim;
  server.net = &net;
  server.addr = net.attach(&server);
  EXPECT_EQ(server.addr, 0);

  RunOutcome out;
  if (cohort) {
    ClientCohort co(sim, net, tree, workload, *partition, dirfrag,
                    /*count=*/1, /*first_id=*/0, /*num_mds=*/1, kSeed);
    co.set_retry_policy(rp);
    co.start();
    sim.run_until(horizon);
    out.stats = co.stats();
  } else {
    Client c(sim, net, tree, workload, *partition, dirfrag, /*id=*/0,
             /*num_mds=*/1, kSeed);
    c.set_retry_policy(rp);
    c.start();
    sim.run_until(horizon);
    out.stats = c.stats();
  }
  out.arrivals = server.arrivals;
  return out;
}

ClientRetryParams tight_policy() {
  ClientRetryParams rp;
  rp.request_timeout = 100 * kMillisecond;
  rp.backoff_base = 50 * kMillisecond;
  rp.backoff_cap = 200 * kMillisecond;
  return rp;
}

/// Backoff window before re-issue number `attempt` (matches
/// retry_backoff_delay's exponential-with-cap shape).
SimTime backoff_ceiling(const ClientRetryParams& rp, int attempt) {
  SimTime d = rp.backoff_base << (attempt - 1 < 6 ? attempt - 1 : 6);
  return d > rp.backoff_cap ? rp.backoff_cap : d;
}

/// The attempt sequences must agree exactly on their common prefix: the
/// pattern is pure protocol state, independent of either RNG stream.
void expect_same_attempt_pattern(const RunOutcome& a, const RunOutcome& b) {
  const std::size_t n = std::min(a.arrivals.size(), b.arrivals.size());
  ASSERT_GT(n, 0u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.arrivals[i].attempt, b.arrivals[i].attempt) << "arrival " << i;
  }
  // Jitter and wheel quantization (< 1 ms per timer) stretch the
  // cohort's cycles slightly, so the horizon cuts the two runs off a few
  // percent apart — proportionally for fast cycles, a handful for slow.
  const std::size_t diff = a.arrivals.size() > b.arrivals.size()
                               ? a.arrivals.size() - b.arrivals.size()
                               : b.arrivals.size() - a.arrivals.size();
  EXPECT_LE(diff, std::max<std::size_t>(4, n / 2));
}

TEST(RetryParity, SustainedTimeoutsSpendTheBudgetIdentically) {
  ClientRetryParams rp = tight_policy();
  rp.budget.enabled = true;
  rp.budget.ratio = 0.1;
  rp.budget.cap = 3.0;
  const SimTime horizon = 3 * kSecond;
  const RunOutcome standalone = run_world<Blackhole>(false, rp, horizon);
  const RunOutcome cohort = run_world<Blackhole>(true, rp, horizon);

  for (const RunOutcome* r : {&standalone, &cohort}) {
    ASSERT_GE(r->arrivals.size(), 8u);
    // One op burns the whole budget (attempts 1..3), then every fresh op
    // fails fast on its first timeout: 0,1,2,3,0,0,0,...
    for (std::size_t i = 0; i < r->arrivals.size(); ++i) {
      EXPECT_EQ(r->arrivals[i].attempt, i < 4 ? i : 0u) << "arrival " << i;
    }
    // Re-issue pacing: timeout plus jittered backoff in [d/2, d).
    for (std::size_t i = 1; i < 4; ++i) {
      const SimTime gap = r->arrivals[i].at - r->arrivals[i - 1].at;
      const SimTime d =
          backoff_ceiling(rp, static_cast<int>(r->arrivals[i].attempt));
      EXPECT_GE(gap, rp.request_timeout + d / 2);
      EXPECT_LE(gap, rp.request_timeout + d + kSlack);
    }
    // Budget accounting: exactly cap tokens were ever spent; every later
    // timeout was suppressed, and each suppression failed one op.
    EXPECT_EQ(r->stats.retries - r->stats.retries_suppressed, 3u);
    EXPECT_EQ(r->stats.ops_failed, r->stats.retries_suppressed);
    EXPECT_GT(r->stats.retries_suppressed, 0u);
    EXPECT_EQ(r->stats.ops_completed, 0u);
    EXPECT_EQ(r->stats.stale_replies, 0u);
  }
  expect_same_attempt_pattern(standalone, cohort);
}

TEST(RetryParity, WithoutBudgetBothRetryForever) {
  ClientRetryParams rp = tight_policy();  // budget disabled
  const SimTime horizon = 2 * kSecond;
  const RunOutcome standalone = run_world<Blackhole>(false, rp, horizon);
  const RunOutcome cohort = run_world<Blackhole>(true, rp, horizon);

  for (const RunOutcome* r : {&standalone, &cohort}) {
    ASSERT_GE(r->arrivals.size(), 5u);
    // One op, attempts strictly increasing: never abandoned.
    for (std::size_t i = 0; i < r->arrivals.size(); ++i) {
      EXPECT_EQ(r->arrivals[i].attempt, i);
    }
    EXPECT_EQ(r->stats.ops_failed, 0u);
    EXPECT_EQ(r->stats.retries_suppressed, 0u);
    // Each arrival after the first was preceded by one timeout; one more
    // timeout may be pending its backoff at the horizon.
    EXPECT_GE(r->stats.retries + 1, r->arrivals.size());
    EXPECT_LE(r->stats.retries, r->arrivals.size());
  }
  expect_same_attempt_pattern(standalone, cohort);
}

TEST(RetryParity, RejectedRepliesHonorRetryAfterWithJitter) {
  ClientRetryParams rp = tight_policy();
  rp.budget.enabled = true;
  rp.budget.ratio = 0.1;
  rp.budget.cap = 3.0;
  const SimTime horizon = 2 * kSecond;
  const RunOutcome standalone = run_world<Rejector>(false, rp, horizon);
  const RunOutcome cohort = run_world<Rejector>(true, rp, horizon);
  const SimTime retry_after = Rejector{}.retry_after;

  for (const RunOutcome* r : {&standalone, &cohort}) {
    ASSERT_GE(r->arrivals.size(), 8u);
    // Same budget pattern as timeouts, but the cycle is driven by fast
    // rejections, not timeout expiry: no retries, only rejected replies.
    for (std::size_t i = 0; i < r->arrivals.size(); ++i) {
      EXPECT_EQ(r->arrivals[i].attempt, i < 4 ? i : 0u) << "arrival " << i;
    }
    for (std::size_t i = 1; i < 4; ++i) {
      // Round trip + server hint + up to 50% de-synchronizing jitter.
      const SimTime gap = r->arrivals[i].at - r->arrivals[i - 1].at;
      EXPECT_GE(gap, 2 * kLatency + retry_after);
      EXPECT_LE(gap, 2 * kLatency + retry_after + retry_after / 2 + kSlack);
    }
    EXPECT_EQ(r->stats.retries, 0u);
    EXPECT_GT(r->stats.rejected_replies, 0u);
    const std::uint64_t diff =
        r->stats.rejected_replies > r->arrivals.size()
            ? r->stats.rejected_replies - r->arrivals.size()
            : r->arrivals.size() - r->stats.rejected_replies;
    EXPECT_LE(diff, 1u);  // at most one rejection still in flight
    EXPECT_EQ(r->stats.ops_failed, r->stats.retries_suppressed);
    EXPECT_EQ(r->stats.ops_ok, 0u);
  }
  expect_same_attempt_pattern(standalone, cohort);
}

TEST(RetryParity, LateRepliesAfterReissueAreDiscardedAsStale) {
  ClientRetryParams rp = tight_policy();
  rp.budget.enabled = true;
  rp.budget.ratio = 0.1;
  rp.budget.cap = 2.0;
  const SimTime horizon = 3 * kSecond;
  // Replies arrive 250 ms after each request: past the timeout (100 ms)
  // plus any backoff (< 100 ms here), so the re-issue — under a fresh
  // req_id — always wins the race and the reply is stale on arrival.
  const RunOutcome standalone = run_world<SlowReplier>(false, rp, horizon);
  const RunOutcome cohort = run_world<SlowReplier>(true, rp, horizon);

  for (const RunOutcome* r : {&standalone, &cohort}) {
    EXPECT_GT(r->stats.stale_replies, 0u);
    EXPECT_EQ(r->stats.ops_ok, 0u);
    EXPECT_EQ(r->stats.ops_completed, 0u);
    EXPECT_EQ(r->stats.retries - r->stats.retries_suppressed, 2u);
    // Every delivered reply was stale (the last few may still be in
    // flight at the horizon).
    EXPECT_LE(r->stats.stale_replies, r->arrivals.size());
    EXPECT_GE(r->stats.stale_replies + 3, r->arrivals.size());
  }
  expect_same_attempt_pattern(standalone, cohort);
}

}  // namespace
}  // namespace mdsim

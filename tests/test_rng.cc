#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace mdsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDiffer) {
  Rng a(123, 0), b(123, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform(n), n);
    }
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
  }
}

TEST(Rng, BernoulliProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, WeightedPickFollowsWeights) {
  Rng rng(29);
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted_pick(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.015);
}

// --- Zipf -------------------------------------------------------------

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, InRangeAndHeadHeavy) {
  const double s = GetParam();
  constexpr std::size_t kN = 1000;
  ZipfSampler zipf(kN, s);
  Rng rng(31);
  std::vector<int> counts(kN, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const std::size_t k = zipf(rng);
    ASSERT_LT(k, kN);
    ++counts[k];
  }
  // Rank 0 must be the most popular, and popularity must broadly decay.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
  int head = 0, tail = 0;
  for (std::size_t i = 0; i < 10; ++i) head += counts[i];
  for (std::size_t i = kN - 10; i < kN; ++i) tail += counts[i];
  EXPECT_GT(head, tail * 2);
}

TEST_P(ZipfTest, MatchesTheoreticalHeadProbability) {
  const double s = GetParam();
  constexpr std::size_t kN = 100;
  ZipfSampler zipf(kN, s);
  Rng rng(37);
  double norm = 0.0;
  for (std::size_t k = 1; k <= kN; ++k) {
    norm += std::pow(static_cast<double>(k), -s);
  }
  const double p0 = 1.0 / norm;
  constexpr int kSamples = 300000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) hits += zipf(rng) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, p0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

TEST(Zipf, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

// --- AliasTable --------------------------------------------------------

TEST(AliasTable, MatchesWeights) {
  Rng rng(43);
  const std::vector<double> w{5.0, 0.0, 1.0, 4.0};
  AliasTable table(w);
  std::vector<int> counts(4, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[table(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.5, 0.01);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.4, 0.01);
}

TEST(AliasTable, UniformWeights) {
  Rng rng(47);
  AliasTable table(std::vector<double>(7, 1.0));
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[table(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

// --- substream derivation ----------------------------------------------

TEST(RngSubstream, DeterministicForSameParentStateAndId) {
  const Rng parent(123, 5);
  Rng a = parent.substream(9);
  Rng b = parent.substream(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngSubstream, DoesNotPerturbParent) {
  Rng a(123, 5), b(123, 5);
  (void)a.substream(1);
  (void)a.substream(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngSubstream, DistinctIdsAreDecorrelated) {
  const Rng parent(123, 5);
  Rng a = parent.substream(0);
  Rng b = parent.substream(1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(RngSubstream, DifferentParentStatesDiverge) {
  Rng p1(123, 5);
  Rng p2(123, 5);
  (void)p2.next();  // advance one: substreams must key off current state
  Rng a = p1.substream(3);
  Rng b = p2.substream(3);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(RngSubstream, FirstDrawsAcrossManyStreamsLookUniform) {
  // The cohort's usage pattern: one generator per client, all derived
  // from one parent with sequential ids. The *ensemble* of first draws
  // must itself be uniform — sequential ids must not leave a lattice.
  const Rng parent(2024, 0xc11e47000ULL);
  constexpr int kStreams = 100000;
  constexpr int kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  double mean = 0.0;
  for (int i = 0; i < kStreams; ++i) {
    Rng s = parent.substream(static_cast<std::uint64_t>(i));
    const double u = s.uniform_double();
    mean += u;
    ++counts[static_cast<int>(u * kBuckets)];
  }
  mean /= kStreams;
  EXPECT_NEAR(mean, 0.5, 0.005);
  const int expect = kStreams / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expect, expect * 0.1);
}

}  // namespace
}  // namespace mdsim

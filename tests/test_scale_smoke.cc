// Large-cohort smoke: one hundred thousand clients through the sharded
// engine on a short horizon. Not a benchmark — this guards the scale
// path's invariants (dense per-client state, wheel-batched cohort stats,
// delivery batching, catalog sampling) at a population two orders of
// magnitude past the unit tests, and checks the run is bit-identical
// across worker-thread counts.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/sharded_cluster.h"

namespace mdsim {
namespace {

struct ScaleRun {
  RunResult result;
  std::uint64_t events = 0;
  std::uint64_t cross_posts = 0;
  std::uint64_t remote_ops = 0;
};

ScaleRun run_100k(int threads) {
  // Same dense shape as the bench/sim_scale ladder rungs (8 MDS per
  // shard, 15 ms think time), population pushed to 1e5 on a horizon just
  // long enough to exercise steady state after warmup.
  SimConfig cfg = scaled_system_config(StrategyKind::kDynamicSubtree, 8);
  cfg.num_clients = 100000;
  cfg.shards = 8;
  cfg.threads = threads;
  cfg.duration = kSecond / 2;
  cfg.warmup = kSecond / 8;
  ShardedClusterSim cluster(cfg);
  cluster.run();
  ScaleRun r;
  r.result = cluster.result();
  r.events = cluster.engine().events_executed();
  r.cross_posts = cluster.engine().cross_posts();
  r.remote_ops = cluster.remote_ops();
  return r;
}

// Non-general workloads now run sharded (each shard wires the workload
// against its own tree: a flash crowd picks one seeded target per
// shard, a shifting run moves clients within its shard's namespace).
// Smoke both paths and require thread-count invariance.
ScaleRun run_workload(WorkloadKind kind, int threads) {
  SimConfig cfg = kind == WorkloadKind::kFlashCrowd
                      ? flash_crowd_config(/*traffic_control=*/true)
                      : shift_config(StrategyKind::kDynamicSubtree);
  cfg.workload = kind;
  cfg.num_clients = 2000;
  cfg.shards = 4;
  cfg.threads = threads;
  cfg.duration = cfg.warmup + kSecond;
  ShardedClusterSim cluster(cfg);
  cluster.run();
  ScaleRun r;
  r.result = cluster.result();
  r.events = cluster.engine().events_executed();
  return r;
}

TEST(ScaleSmoke, FlashCrowdAndShiftingRunShardedDeterministically) {
  for (WorkloadKind kind :
       {WorkloadKind::kFlashCrowd, WorkloadKind::kShifting}) {
    const ScaleRun a = run_workload(kind, /*threads=*/1);
    const ScaleRun b = run_workload(kind, /*threads=*/4);
    EXPECT_GT(a.result.replies, 500u) << workload_name(kind);
    EXPECT_EQ(a.events, b.events) << workload_name(kind);
    EXPECT_EQ(a.result.replies, b.result.replies) << workload_name(kind);
    EXPECT_EQ(a.result.hit_rate, b.result.hit_rate) << workload_name(kind);
  }
}

TEST(ScaleSmoke, HundredThousandClientsRunAndStayDeterministic) {
  const ScaleRun a = run_100k(/*threads=*/1);

  // Invariants: the cohort made real progress and the stats layer kept
  // its books. Latency stays within the simulated timeout budget, every
  // shard's MDS group served traffic, and failure give-ups are a small
  // minority on a healthy cluster.
  EXPECT_GT(a.result.replies, 20000u);
  EXPECT_GT(a.result.avg_mds_throughput, 0.0);
  EXPECT_GT(a.result.hit_rate, 0.5);
  EXPECT_LE(a.result.hit_rate, 1.0);
  EXPECT_GE(a.result.forward_fraction, 0.0);
  EXPECT_LE(a.result.forward_fraction, 1.0);
  EXPECT_GT(a.result.mean_latency_ms, 0.0);
  // 1e5 clients over-drive this shape into the paper's disk-bound regime,
  // so give-ups are not rare — but completions must still dominate.
  EXPECT_LT(a.result.failures, a.result.replies);
  EXPECT_GT(a.remote_ops, 0u);

  // Bit-identical across thread counts: same events, same aggregate
  // metrics, down to the double.
  const ScaleRun b = run_100k(/*threads=*/4);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.cross_posts, b.cross_posts);
  EXPECT_EQ(a.remote_ops, b.remote_ops);
  EXPECT_EQ(a.result.replies, b.result.replies);
  EXPECT_EQ(a.result.failures, b.result.failures);
  EXPECT_EQ(a.result.avg_mds_throughput, b.result.avg_mds_throughput);
  EXPECT_EQ(a.result.hit_rate, b.result.hit_rate);
  EXPECT_EQ(a.result.forward_fraction, b.result.forward_fraction);
  EXPECT_EQ(a.result.mean_latency_ms, b.result.mean_latency_ms);
}

}  // namespace
}  // namespace mdsim

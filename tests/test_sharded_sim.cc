#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/sharded_cluster.h"
#include "sim/sharded.h"

namespace mdsim {
namespace {

// --- engine semantics --------------------------------------------------

struct Chain {
  Simulation* sim = nullptr;
  std::vector<std::pair<SimTime, int>>* trace = nullptr;
  int id = 0;
  SimTime step = 0;
  int remaining = 0;
  void fire() {
    trace->emplace_back(sim->now(), id);
    if (--remaining > 0) {
      sim->schedule(step, [this] { fire(); });
    }
  }
};

void seed_chains(Simulation& sim,
                 std::vector<std::unique_ptr<Chain>>& chains,
                 std::vector<std::pair<SimTime, int>>& trace,
                 std::uint64_t seed) {
  Rng rng(seed, 0x5eed);
  for (int k = 0; k < 6; ++k) {
    auto c = std::make_unique<Chain>();
    c->sim = &sim;
    c->trace = &trace;
    c->id = k;
    c->step = 50 + rng.uniform(500);
    c->remaining = 20 + static_cast<int>(rng.uniform(30));
    const SimTime start = rng.uniform(300);
    sim.schedule_at(start, [p = c.get()] { p->fire(); });
    chains.push_back(std::move(c));
  }
}

TEST(ShardedSim, SingleShardMatchesPlainSimulation) {
  // The windowed driver must be invisible: one shard, no cross traffic,
  // identical event trace and clock to a plain Simulation run.
  std::vector<std::pair<SimTime, int>> plain_trace, sharded_trace;
  std::vector<std::unique_ptr<Chain>> a, b;

  Simulation plain;
  seed_chains(plain, a, plain_trace, 99);
  const std::uint64_t plain_events = plain.run_until(8000);

  ShardedSimulation eng(1, /*lookahead=*/100);
  seed_chains(eng.shard(0), b, sharded_trace, 99);
  const std::uint64_t sharded_events = eng.run_until(8000);

  EXPECT_EQ(plain_trace, sharded_trace);
  EXPECT_EQ(plain_events, sharded_events);
  EXPECT_EQ(plain.now(), eng.shard(0).now());
}

TEST(ShardedSim, ClocksEndExactlyAtUntil) {
  ShardedSimulation eng(3, 100);
  eng.shard(1).schedule(10, [] {});
  eng.run_until(1000);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(eng.shard(s).now(), 1000);
  EXPECT_EQ(eng.run_until(2000), 0u);  // nothing left to execute
  for (int s = 0; s < 3; ++s) EXPECT_EQ(eng.shard(s).now(), 2000);
}

TEST(ShardedSim, CrossPostRunsAtStampedTimeInDestinationEngine) {
  ShardedSimulation eng(2, 1000);
  std::vector<SimTime> at;
  eng.shard(0).schedule(500, [&] {
    const SimTime when = eng.shard(0).now() + 1000;  // exactly lookahead
    eng.post(0, 1, when, InlineTask([&] {
      at.push_back(eng.shard(1).now());
    }));
  });
  eng.run_until(5000);
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 1500);
  EXPECT_EQ(eng.cross_posts(), 1u);
}

// --- cross-shard ordering determinism (the tentpole invariant) ---------

// A mesh of drivers, one per shard, all firing at the same instants and
// posting into randomly chosen destination shards with delivery exactly
// lookahead away — so every round, several sources' messages land in the
// same destination at the same simulated instant. The drained order (and
// therefore the same-instant tie-break) must be a pure function of the
// simulation: any thread count, any seed, byte-identical traces.
struct MeshRun {
  std::vector<std::string> lines;
  std::uint64_t events = 0;
  std::uint64_t crossings = 0;
};

MeshRun run_mesh(std::uint64_t seed, int threads, int shards) {
  constexpr SimTime kLookahead = 1000;
  ShardedSimulation eng(shards, kLookahead);
  eng.set_threads(threads);
  std::vector<std::vector<std::string>> traces(
      static_cast<std::size_t>(shards));

  struct Driver {
    ShardedSimulation* eng = nullptr;
    std::vector<std::vector<std::string>>* traces = nullptr;
    int s = 0;
    int shards = 0;
    Rng rng;
    int payload = 0;
    void fire() {
      Simulation& sim = eng->shard(s);
      for (int k = 0; k < 2; ++k) {
        int d = static_cast<int>(rng.uniform(
            static_cast<std::uint64_t>(shards - 1)));
        if (d >= s) ++d;
        const int p = payload++;
        const int src = s;
        Simulation* dest_sim = &eng->shard(d);
        auto* tr = &(*traces)[static_cast<std::size_t>(d)];
        eng->post(s, d, sim.now() + kLookahead,
                  InlineTask([tr, dest_sim, src, p] {
                    tr->push_back(std::to_string(dest_sim->now()) + ":" +
                                  std::to_string(src) + ":" +
                                  std::to_string(p));
                  }));
      }
      if (sim.now() + 500 <= 20000) sim.schedule(500, [this] { fire(); });
    }
  };

  std::vector<std::unique_ptr<Driver>> drivers;
  for (int s = 0; s < shards; ++s) {
    auto d = std::make_unique<Driver>();
    d->eng = &eng;
    d->traces = &traces;
    d->s = s;
    d->shards = shards;
    d->rng = Rng(seed, static_cast<std::uint64_t>(s));
    eng.shard(s).schedule_at(0, [p = d.get()] { p->fire(); });
    drivers.push_back(std::move(d));
  }

  MeshRun out;
  out.events = eng.run_until(25000);
  out.crossings = eng.cross_posts();
  for (int s = 0; s < shards; ++s) {
    out.lines.push_back("shard " + std::to_string(s));
    for (auto& l : traces[static_cast<std::size_t>(s)]) {
      out.lines.push_back(std::move(l));
    }
  }
  return out;
}

TEST(ShardedSim, SameInstantCrossTrafficIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const MeshRun base = run_mesh(seed, /*threads=*/1, /*shards=*/4);
    EXPECT_GT(base.crossings, 0u);
    for (int threads : {2, 4}) {
      const MeshRun run = run_mesh(seed, threads, 4);
      EXPECT_EQ(base.lines, run.lines)
          << "seed " << seed << ", threads " << threads;
      EXPECT_EQ(base.events, run.events);
      EXPECT_EQ(base.crossings, run.crossings);
    }
  }
}

TEST(ShardedSim, MeshRepeatsByteIdenticalAtSameThreadCount) {
  const MeshRun a = run_mesh(7, 4, 4);
  const MeshRun b = run_mesh(7, 4, 4);
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(a.events, b.events);
}

// --- full-cluster determinism ------------------------------------------

RunResult run_cluster(int threads, std::uint64_t* events) {
  SimConfig cfg;
  cfg.num_mds = 4;
  cfg.num_clients = 40;
  cfg.fs.num_users = 4;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 400 * kMillisecond;
  cfg.warmup = 100 * kMillisecond;
  cfg.shards = 2;
  cfg.threads = threads;
  ShardedClusterSim cluster(cfg);
  cluster.run();
  *events = cluster.engine().events_executed();
  return cluster.result();
}

TEST(ShardedSim, ClusterResultsIdenticalAcrossThreadCounts) {
  std::uint64_t ev1 = 0, ev2 = 0;
  const RunResult r1 = run_cluster(1, &ev1);
  const RunResult r2 = run_cluster(2, &ev2);
  EXPECT_EQ(ev1, ev2);
  EXPECT_EQ(r1.replies, r2.replies);
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.avg_mds_throughput, r2.avg_mds_throughput);
  EXPECT_EQ(r1.hit_rate, r2.hit_rate);
  EXPECT_EQ(r1.forward_fraction, r2.forward_fraction);
  EXPECT_EQ(r1.mean_latency_ms, r2.mean_latency_ms);
  EXPECT_GT(r1.replies, 0u);
}

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include <vector>

#include "sim/queue_server.h"
#include "sim/simulation.h"

namespace mdsim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SameTimeFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen = 0;
  sim.schedule(42, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 42u);
  EXPECT_EQ(sim.now(), 42u);
}

TEST(Simulation, RunUntilStopsAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  EventHandle h = sim.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(h.pending());
}

TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  int runs = 0;
  EventHandle h = sim.schedule(1, [&] { ++runs; });
  sim.run();
  h.cancel();
  EXPECT_EQ(runs, 1);
}

TEST(Simulation, EveryRepeatsUntilFalse) {
  Simulation sim;
  int ticks = 0;
  sim.every(10, 10, [&] { return ++ticks < 5; });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulation, EventCountTracked) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

// --- QueueServer --------------------------------------------------------

TEST(QueueServer, SerializesJobs) {
  Simulation sim;
  QueueServer q(sim, "disk");
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    q.submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(q.jobs_completed(), 3u);
}

TEST(QueueServer, AccessLatencyOutsideSerialization) {
  Simulation sim;
  QueueServer q(sim, "disk");
  q.set_access_latency(50);
  std::vector<SimTime> completions;
  q.submit(100, [&] { completions.push_back(sim.now()); });
  q.submit(100, [&] { completions.push_back(sim.now()); });
  sim.run();
  // Service ends at 100 and 200; each completion shifted by the latency.
  EXPECT_EQ(completions, (std::vector<SimTime>{150, 250}));
}

TEST(QueueServer, ThroughputBoundedByServiceTime) {
  Simulation sim;
  QueueServer q(sim, "cpu");
  int done = 0;
  // Offer far more work than one second of capacity at 1ms/job.
  for (int i = 0; i < 5000; ++i) {
    q.submit(kMillisecond, [&] { ++done; });
  }
  sim.run_until(kSecond);
  EXPECT_EQ(done, 1000);
}

TEST(QueueServer, UtilizationReflectsBusyTime) {
  Simulation sim;
  QueueServer q(sim, "disk");
  q.submit(400, [] {});
  sim.run_until(1000);
  EXPECT_NEAR(q.utilization(sim.now()), 0.4, 1e-9);
}

TEST(QueueServer, WaitTimesRecorded) {
  Simulation sim;
  QueueServer q(sim, "disk");
  q.submit(from_seconds(1), [] {});
  q.submit(from_seconds(1), [] {});
  sim.run();
  EXPECT_EQ(q.wait_times().count(), 2u);
  EXPECT_DOUBLE_EQ(q.wait_times().min(), 0.0);
  EXPECT_NEAR(q.wait_times().max(), 1.0, 1e-9);
}

TEST(QueueServer, ResubmissionFromCompletionQueuesBehind) {
  Simulation sim;
  QueueServer q(sim, "disk");
  std::vector<int> order;
  q.submit(10, [&] {
    order.push_back(1);
    q.submit(10, [&] { order.push_back(3); });
  });
  q.submit(10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(QueueServer, ResetStatsZeroes) {
  Simulation sim;
  QueueServer q(sim, "disk");
  q.submit(100, [] {});
  sim.run();
  q.reset_stats(sim.now());
  EXPECT_EQ(q.jobs_completed(), 0u);
  EXPECT_EQ(q.utilization(sim.now() + 100), 0.0);
}

}  // namespace
}  // namespace mdsim

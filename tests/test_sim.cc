#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/queue_server.h"
#include "sim/simulation.h"

namespace mdsim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SameTimeFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen = 0;
  sim.schedule(42, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 42u);
  EXPECT_EQ(sim.now(), 42u);
}

TEST(Simulation, RunUntilStopsAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  EventHandle h = sim.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(h.pending());
}

TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  int runs = 0;
  EventHandle h = sim.schedule(1, [&] { ++runs; });
  sim.run();
  h.cancel();
  EXPECT_EQ(runs, 1);
}

TEST(Simulation, EveryRepeatsUntilFalse) {
  Simulation sim;
  int ticks = 0;
  sim.every(10, 10, [&] { return ++ticks < 5; });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulation, EventCountTracked) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulation, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or touch any simulation
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(Simulation, StaleHandleCannotCancelSlotReuser) {
  Simulation sim;
  bool first = false;
  bool second = false;
  EventHandle h1 = sim.schedule(1, [&] { first = true; });
  sim.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(h1.pending());
  // The next event reuses h1's freed slot; the stale handle's generation
  // no longer matches, so it must not act on the new occupant.
  EventHandle h2 = sim.schedule(1, [&] { second = true; });
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  sim.run();
  EXPECT_TRUE(second);
  EXPECT_EQ(sim.counters().cancelled, 0u);
}

TEST(Simulation, HandleInertDuringOwnExecution) {
  Simulation sim;
  EventHandle h;
  bool pending_inside = true;
  h = sim.schedule(5, [&] {
    pending_inside = h.pending();
    h.cancel();  // cancelling the event from inside itself is a no-op
  });
  sim.run();
  EXPECT_FALSE(pending_inside);
  const auto c = sim.counters();
  EXPECT_EQ(c.fired, 1u);
  EXPECT_EQ(c.cancelled, 0u);
}

TEST(Simulation, CancelTwiceCountsOnce) {
  Simulation sim;
  EventHandle h = sim.schedule(10, [] {});
  h.cancel();
  h.cancel();
  sim.run();
  const auto c = sim.counters();
  EXPECT_EQ(c.cancelled, 1u);
  EXPECT_EQ(c.fired, 0u);
}

TEST(Simulation, CountersTrackLifecycle) {
  Simulation sim;
  const auto c0 = sim.counters();
  EXPECT_EQ(c0.scheduled, 0u);
  EXPECT_EQ(c0.fired, 0u);
  EXPECT_EQ(c0.cancelled, 0u);
  EXPECT_EQ(c0.task_heap_fallbacks, 0u);

  EventHandle doomed = sim.schedule(10, [] {});
  sim.schedule(20, [] {});
  sim.schedule(30, [] {});
  doomed.cancel();
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.run();

  const auto c = sim.counters();
  EXPECT_EQ(c.scheduled, 3u);
  EXPECT_EQ(c.fired, 2u);
  EXPECT_EQ(c.cancelled, 1u);
  // Every capture above fits the inline buffer: the steady-state promise.
  EXPECT_EQ(c.task_heap_fallbacks, 0u);
}

TEST(Simulation, OversizedCaptureFallsBackToHeapAndCounts) {
  Simulation sim;
  struct Big {
    char pad[InlineTask::kInlineSize + 64];
  };
  Big big{};
  big.pad[0] = 7;
  char seen = 0;
  sim.schedule(1, [big, &seen] { seen = big.pad[0]; });
  EXPECT_EQ(sim.counters().task_heap_fallbacks, 1u);
  sim.run();
  EXPECT_EQ(seen, 7);  // oversized callables still work, just slower
}

TEST(Simulation, HeapFallbacksAttributedToTheSchedulingEngine) {
  // Two engines on one thread (the sharded-cluster shape): each engine's
  // counter must reflect only its own events, not a process-wide total.
  Simulation a, b;
  struct Big {
    char pad[InlineTask::kInlineSize + 64];
  };
  Big big{};
  a.schedule(1, [big] { (void)big.pad; });
  b.schedule(1, [] {});
  EXPECT_EQ(a.counters().task_heap_fallbacks, 1u);
  EXPECT_EQ(b.counters().task_heap_fallbacks, 0u);
  a.run();
  b.run();
}

TEST(Simulation, MoveOnlyCaptureSupported) {
  Simulation sim;
  auto p = std::make_unique<int>(41);
  int got = 0;
  sim.schedule(1, [p = std::move(p), &got] { got = *p + 1; });
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(Simulation, SameInstantFifoSurvivesInterleavedCancels) {
  Simulation sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sim.schedule(5, [&order, i] { order.push_back(i); }));
  }
  handles[2].cancel();
  handles[5].cancel();
  handles[7].cancel();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4, 6, 8, 9}));
}

TEST(Simulation, RunUntilBoundaryIsInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.run_until(9);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 9u);
  sim.run_until(10);  // an event exactly at `until` fires
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulation, StepExecutesExactlyOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1, [&] { ++fired; });
  sim.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step(~SimTime{0}));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step(~SimTime{0}));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step(~SimTime{0}));
}

TEST(Simulation, EveryHonoursStartOffset) {
  Simulation sim;
  std::vector<SimTime> ticks;
  sim.every(10, 3, [&] {
    ticks.push_back(sim.now());
    return ticks.size() < 3;
  });
  sim.run();
  EXPECT_EQ(ticks, (std::vector<SimTime>{3, 13, 23}));
}

TEST(Simulation, SchedulingFromCallbackReusesSlabSafely) {
  // Deep chains churn slot reuse and chunk growth; the sum proves every
  // link ran exactly once with its capture intact.
  Simulation sim;
  int sum = 0;
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) return;
    sim.schedule(1, [&, depth] {
      sum += depth;
      spawn(depth - 1);
    });
  };
  spawn(600);  // deeper than two slot chunks
  sim.run();
  EXPECT_EQ(sum, 600 * 601 / 2);
  EXPECT_EQ(sim.counters().fired, 600u);
}

// --- QueueServer --------------------------------------------------------

TEST(QueueServer, SerializesJobs) {
  Simulation sim;
  QueueServer q(sim, "disk");
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    q.submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(q.jobs_completed(), 3u);
}

TEST(QueueServer, AccessLatencyOutsideSerialization) {
  Simulation sim;
  QueueServer q(sim, "disk");
  q.set_access_latency(50);
  std::vector<SimTime> completions;
  q.submit(100, [&] { completions.push_back(sim.now()); });
  q.submit(100, [&] { completions.push_back(sim.now()); });
  sim.run();
  // Service ends at 100 and 200; each completion shifted by the latency.
  EXPECT_EQ(completions, (std::vector<SimTime>{150, 250}));
}

TEST(QueueServer, ThroughputBoundedByServiceTime) {
  Simulation sim;
  QueueServer q(sim, "cpu");
  int done = 0;
  // Offer far more work than one second of capacity at 1ms/job.
  for (int i = 0; i < 5000; ++i) {
    q.submit(kMillisecond, [&] { ++done; });
  }
  sim.run_until(kSecond);
  EXPECT_EQ(done, 1000);
}

TEST(QueueServer, UtilizationReflectsBusyTime) {
  Simulation sim;
  QueueServer q(sim, "disk");
  q.submit(400, [] {});
  sim.run_until(1000);
  EXPECT_NEAR(q.utilization(sim.now()), 0.4, 1e-9);
}

TEST(QueueServer, WaitTimesRecorded) {
  Simulation sim;
  QueueServer q(sim, "disk");
  q.submit(from_seconds(1), [] {});
  q.submit(from_seconds(1), [] {});
  sim.run();
  EXPECT_EQ(q.wait_times().count(), 2u);
  EXPECT_DOUBLE_EQ(q.wait_times().min(), 0.0);
  EXPECT_NEAR(q.wait_times().max(), 1.0, 1e-9);
}

TEST(QueueServer, ResubmissionFromCompletionQueuesBehind) {
  Simulation sim;
  QueueServer q(sim, "disk");
  std::vector<int> order;
  q.submit(10, [&] {
    order.push_back(1);
    q.submit(10, [&] { order.push_back(3); });
  });
  q.submit(10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(QueueServer, MoveOnlyCompletionSupported) {
  Simulation sim;
  QueueServer q(sim, "disk");
  auto payload = std::make_unique<int>(5);
  int got = 0;
  q.submit(10, [p = std::move(payload), &got] { got = *p; });
  sim.run();
  EXPECT_EQ(got, 5);
}

TEST(QueueServer, ResetStatsZeroes) {
  Simulation sim;
  QueueServer q(sim, "disk");
  q.submit(100, [] {});
  sim.run();
  q.reset_stats(sim.now());
  EXPECT_EQ(q.jobs_completed(), 0u);
  EXPECT_EQ(q.utilization(sim.now() + 100), 0.0);
}

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include <cmath>

#include "common/csv.h"
#include "common/stats.h"
#include "common/types.h"

namespace mdsim {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);
  EXPECT_NEAR(s.sum(), 15.0, 1e-9);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeEqualsCombined) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(LogHistogram, PercentilesOrdered) {
  LogHistogram h(1.0, 1e6, 40);
  for (int i = 1; i <= 1000; ++i) h.add(i);
  const double p50 = h.percentile(50);
  const double p90 = h.percentile(90);
  const double p99 = h.percentile(99);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  EXPECT_NEAR(p50, 500, 60);  // log-bucket resolution
  EXPECT_NEAR(p99, 990, 80);
}

TEST(LogHistogram, MeanExact) {
  LogHistogram h;
  h.add(10, 3);
  h.add(20);
  EXPECT_DOUBLE_EQ(h.mean(), 12.5);
  EXPECT_EQ(h.total_count(), 4u);
}

TEST(LogHistogram, PercentileZeroSkipsEmptyBottomBucket) {
  // Regression: percentile(0) has target 0, which an *empty* underflow
  // bucket used to satisfy immediately — reporting 0.5 * min_value even
  // though every sample sat orders of magnitude above it. The minimum must
  // come from the first occupied bucket.
  LogHistogram h(1.0, 1e6);
  h.add(100);
  EXPECT_GE(h.percentile(0), 100.0 * 0.8);  // within one log bucket of 100
  EXPECT_LE(h.percentile(0), h.percentile(50));
  EXPECT_LE(h.percentile(50), h.percentile(100));
}

TEST(LogHistogram, PercentileHundredFromOverflowBucket) {
  // A sample beyond max_value lands in the overflow clamp bucket, which
  // has no meaningful upper edge: percentile(100) reports its lower bound
  // instead of a midpoint extrapolated past max_value.
  LogHistogram h(1.0, 1e2, 10);
  h.add(1e6);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  h.add(5.0, 99);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_LT(h.percentile(50), 10.0);  // bulk stays in the 5.0 bucket
}

TEST(LogHistogram, ValuesAtOrBelowMinShareUnderflowBucket) {
  LogHistogram h(10.0, 1e3, 10);
  h.add(3.0);
  h.add(10.0);  // exactly min_value also underflows
  EXPECT_EQ(h.total_count(), 2u);
  // Underflow bucket spans [0, min_value): reported as its midpoint.
  EXPECT_DOUBLE_EQ(h.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 5.0);
}

TEST(LogHistogram, EmptyPercentileIsZero) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
}

TEST(LogHistogram, MergePreservesPercentilesAndMean) {
  LogHistogram a(1.0, 1e6, 20), b(1.0, 1e6, 20), all(1.0, 1e6, 20);
  for (int i = 1; i <= 200; ++i) {
    const double v = i * 7.0;
    ((i % 2) != 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total_count(), all.total_count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.percentile(50), all.percentile(50));
  EXPECT_DOUBLE_EQ(a.percentile(99), all.percentile(99));
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(LogHistogramDeathTest, MergeRejectsMismatchedShape) {
  LogHistogram a(1.0, 1e4, 5);
  LogHistogram b(1.0, 1e6, 5);  // different bucket count
  EXPECT_DEATH(a.merge(b), "counts_");
}
#endif

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a(1, 1e4, 5), b(1, 1e4, 5);
  a.add(100);
  b.add(200, 3);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 4u);
}

TEST(DecayCounter, HalvesAtHalfLife) {
  DecayCounter c(kSecond);
  c.hit(0, 8.0);
  EXPECT_NEAR(c.get(kSecond), 4.0, 1e-9);
  EXPECT_NEAR(c.get(2 * kSecond), 2.0, 1e-9);
  EXPECT_NEAR(c.get(3 * kSecond), 1.0, 1e-9);
}

TEST(DecayCounter, AccumulatesHits) {
  DecayCounter c(kSecond);
  c.hit(0);
  c.hit(0);
  c.hit(0);
  EXPECT_NEAR(c.get(0), 3.0, 1e-12);
}

TEST(DecayCounter, DecayAppliedBeforeNewHit) {
  DecayCounter c(kSecond);
  c.hit(0, 4.0);
  c.hit(kSecond, 1.0);
  EXPECT_NEAR(c.get(kSecond), 3.0, 1e-9);
}

TEST(DecayCounter, ResetClears) {
  DecayCounter c(kSecond);
  c.hit(0, 10.0);
  c.reset();
  EXPECT_EQ(c.get(5 * kSecond), 0.0);
}

TEST(IntervalRate, ComputesRateAndResets) {
  IntervalRate r;
  r.sample(0);
  r.add(100);
  EXPECT_DOUBLE_EQ(r.sample(kSecond), 100.0);
  r.add(50);
  EXPECT_DOUBLE_EQ(r.sample(3 * kSecond), 25.0);
  EXPECT_DOUBLE_EQ(r.sample(4 * kSecond), 0.0);
}

TEST(TimeSeries, MeanInWindow) {
  TimeSeries ts;
  ts.record(1 * kSecond, 10);
  ts.record(2 * kSecond, 20);
  ts.record(3 * kSecond, 30);
  EXPECT_DOUBLE_EQ(ts.mean_in(0, 10 * kSecond), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(2 * kSecond, 3 * kSecond), 20.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 30.0);
}

TEST(TimeSeries, MeanInWindowIsHalfOpenByDefault) {
  TimeSeries ts;
  ts.record(1 * kSecond, 10);
  ts.record(2 * kSecond, 20);
  ts.record(3 * kSecond, 30);
  // [1s, 3s) excludes the 3s sample...
  EXPECT_DOUBLE_EQ(ts.mean_in(1 * kSecond, 3 * kSecond), 15.0);
  // ...so consecutive interior windows count each sample exactly once.
  EXPECT_DOUBLE_EQ(ts.mean_in(3 * kSecond, 5 * kSecond), 30.0);
}

TEST(TimeSeries, MeanInIncludeEndCapturesRunEndBoundarySample) {
  // run_until(d) fires events at exactly d, so the final metrics sample
  // lands on the boundary. A half-open window ending at the run end used
  // to silently drop it; include_end pulls it back in.
  TimeSeries ts;
  ts.record(1 * kSecond, 10);
  ts.record(2 * kSecond, 20);
  ts.record(3 * kSecond, 30);  // final sample, exactly at duration
  EXPECT_DOUBLE_EQ(
      ts.mean_in(1 * kSecond, 3 * kSecond, /*include_end=*/true), 20.0);
  // Degenerate window [t, t] with include_end picks up the lone sample.
  EXPECT_DOUBLE_EQ(
      ts.mean_in(3 * kSecond, 3 * kSecond, /*include_end=*/true), 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(3 * kSecond, 3 * kSecond), 0.0);
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(250 * kMillisecond), 0.25);
  EXPECT_EQ(from_millis(2.0), 2 * kMillisecond);
  EXPECT_EQ(from_micros(3.0), 3 * kMicrosecond);
}

TEST(Perms, OwnerAndWorldBits) {
  Perms p;
  p.mode = 0700;
  p.uid = 42;
  EXPECT_TRUE(p.allows_traverse(42));
  EXPECT_TRUE(p.allows_read(42));
  EXPECT_TRUE(p.allows_write(42));
  EXPECT_FALSE(p.allows_traverse(7));
  EXPECT_FALSE(p.allows_read(7));
  p.mode = 0755;
  EXPECT_TRUE(p.allows_traverse(7));
  EXPECT_TRUE(p.allows_read(7));
  EXPECT_FALSE(p.allows_write(7));
}

TEST(OpTypes, UpdateClassification) {
  EXPECT_FALSE(op_is_update(OpType::kStat));
  EXPECT_FALSE(op_is_update(OpType::kOpen));
  EXPECT_FALSE(op_is_update(OpType::kReaddir));
  EXPECT_TRUE(op_is_update(OpType::kCreate));
  EXPECT_TRUE(op_is_update(OpType::kRename));
  EXPECT_TRUE(op_is_update(OpType::kChmod));
  EXPECT_TRUE(op_is_update(OpType::kLink));
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/mdsim_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b,comma", "c"});
    csv.field("plain").field(1.5).field(std::int64_t{-2});
    csv.end_row();
    csv.field("with \"quote\"").field(std::uint64_t{7}).field("x");
    csv.end_row();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,\"b,comma\",c");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1.5,-2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with \"\"quote\"\"\",7,x");
}

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include <vector>

#include "fstree/tree.h"
#include "sim/simulation.h"
#include "storage/anchor_table.h"
#include "storage/disk_model.h"
#include "storage/journal.h"
#include "storage/object_store.h"

namespace mdsim {
namespace {

// --- DiskModel --------------------------------------------------------

TEST(DiskModel, TransactionTimingScalesWithNodes) {
  Simulation sim;
  DiskParams params;
  params.transaction_time = kMillisecond;
  params.per_node_time = 100 * kMicrosecond;
  params.access_latency = 0;
  DiskModel disk(sim, params, "d");
  std::vector<SimTime> done;
  disk.read_object(1, [&] { done.push_back(sim.now()); });
  disk.read_object(11, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], kMillisecond);
  EXPECT_EQ(done[1], kMillisecond + (kMillisecond + kMillisecond));
  EXPECT_EQ(disk.reads(), 2u);
}

TEST(DiskModel, JournalIndependentOfStore) {
  Simulation sim;
  DiskParams params;
  params.transaction_time = 10 * kMillisecond;
  params.journal_append_time = kMillisecond;
  params.access_latency = 0;
  DiskModel disk(sim, params, "d");
  SimTime journal_done = 0;
  disk.read_object(1, [] {});
  disk.journal_append([&] { journal_done = sim.now(); });
  sim.run();
  // The journal device does not queue behind the store transaction.
  EXPECT_EQ(journal_done, kMillisecond);
  EXPECT_EQ(disk.journal_appends(), 1u);
}

// --- BoundedJournal ------------------------------------------------------

TEST(Journal, WritebackOnExpiry) {
  std::vector<InodeId> written;
  BoundedJournal j(3, [&](InodeId ino) { written.push_back(ino); });
  j.append(1);
  j.append(2);
  j.append(3);
  EXPECT_TRUE(written.empty());
  j.append(4);  // pushes 1 off the tail
  EXPECT_EQ(written, std::vector<InodeId>{1});
  EXPECT_EQ(j.live_entries(), 3u);
}

TEST(Journal, SupersededEntriesAbsorbWrites) {
  std::vector<InodeId> written;
  BoundedJournal j(3, [&](InodeId ino) { written.push_back(ino); });
  j.append(1);
  j.append(2);
  j.append(1);  // supersedes the first entry
  j.append(3);  // expires slot(1,seq0): superseded, no writeback
  EXPECT_TRUE(written.empty());
  j.append(4);  // expires slot(2): live -> writeback
  EXPECT_EQ(written, std::vector<InodeId>{2});
  EXPECT_GT(j.absorption_rate(), 0.0);
}

TEST(Journal, ReplayReturnsWorkingSetOldestFirst) {
  BoundedJournal j(10, nullptr);
  j.append(5);
  j.append(6);
  j.append(5);  // 5 moves to the head
  const auto ws = j.replay();
  EXPECT_EQ(ws, (std::vector<InodeId>{6, 5}));
  EXPECT_TRUE(j.contains(5));
  EXPECT_TRUE(j.contains(6));
  EXPECT_FALSE(j.contains(7));
}

TEST(Journal, ReplayNeverExceedsCapacity) {
  BoundedJournal j(16, nullptr);
  for (InodeId i = 0; i < 1000; ++i) j.append(i % 40);
  EXPECT_LE(j.replay().size(), 16u);
  EXPECT_EQ(j.total_appends(), 1000u);
}

// --- ObjectStore -----------------------------------------------------------

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest() : store(8) {
    dir = tree.mkdir(tree.root(), "d");
    for (int i = 0; i < 100; ++i) {
      tree.create_file(dir, "f" + std::to_string(i));
    }
  }
  FsTree tree;
  ObjectStore store;
  FsNode* dir;
};

TEST_F(ObjectStoreTest, MaterializesFromGroundTruth) {
  EXPECT_EQ(store.materialized_objects(), 0u);
  const std::uint32_t nodes = store.full_fetch_nodes(dir);
  EXPECT_GT(nodes, 1u);  // 100 entries at order 8 spans several nodes
  EXPECT_EQ(store.materialized_objects(), 1u);
  DirBTree* obj = store.object_for_testing(dir);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->size(), 100u);
  EXPECT_EQ(obj->check_invariants(), "");
}

TEST_F(ObjectStoreTest, LookupCostIsRootToLeaf) {
  const std::uint32_t cost = store.lookup_nodes(dir, "f42");
  DirBTree* obj = store.object_for_testing(dir);
  EXPECT_EQ(cost, obj->height());
}

TEST_F(ObjectStoreTest, IncrementalUpdatesTrackTree) {
  FsNode* f = tree.create_file(dir, "new_file");
  const std::uint32_t dirtied = store.apply_create(
      dir, "new_file", DirRecord{f->ino(), 1, false});
  EXPECT_GE(dirtied, 1u);
  DirBTree* obj = store.object_for_testing(dir);
  EXPECT_EQ(obj->size(), 101u);
  EXPECT_GE(store.apply_remove(dir, "f0"), 1u);
  EXPECT_EQ(obj->size(), 100u);
  EXPECT_EQ(obj->check_invariants(), "");
}

TEST_F(ObjectStoreTest, SnapshotRaisesNextWriteCost) {
  store.full_fetch_nodes(dir);
  FsNode* f = tree.create_file(dir, "a1");
  const std::uint32_t before =
      store.apply_create(dir, "a1", DirRecord{f->ino(), 1, false});
  store.begin_snapshot(dir);
  FsNode* g = tree.create_file(dir, "a2");
  const std::uint32_t after =
      store.apply_create(dir, "a2", DirRecord{g->ino(), 1, false});
  EXPECT_GT(after, before);
}

TEST_F(ObjectStoreTest, DropReleasesObject) {
  store.full_fetch_nodes(dir);
  EXPECT_EQ(store.materialized_objects(), 1u);
  store.drop(dir);
  EXPECT_EQ(store.materialized_objects(), 0u);
}

// --- AnchorTable --------------------------------------------------------

TEST(AnchorTable, AnchorAndResolve) {
  AnchorTable t;
  // File 10 under dirs 3 <- 2 <- root(1).
  t.anchor(10, {3, 2, 1});
  EXPECT_TRUE(t.is_anchored(10));
  EXPECT_EQ(t.resolve(10), (std::vector<InodeId>{3, 2, 1}));
  EXPECT_EQ(t.size(), 4u);  // 10, 3, 2, 1
}

TEST(AnchorTable, RefcountsShareAncestors) {
  AnchorTable t;
  t.anchor(10, {3, 2, 1});
  t.anchor(11, {3, 2, 1});
  EXPECT_EQ(t.size(), 5u);  // 10, 11, 3, 2, 1
  EXPECT_EQ(t.refs(3), 2u);
  EXPECT_TRUE(t.unanchor(10));
  EXPECT_FALSE(t.is_anchored(10));
  EXPECT_TRUE(t.is_anchored(11));
  EXPECT_EQ(t.refs(3), 1u);
  EXPECT_TRUE(t.unanchor(11));
  EXPECT_EQ(t.size(), 0u);
}

TEST(AnchorTable, UnanchorUnknownFails) {
  AnchorTable t;
  EXPECT_FALSE(t.unanchor(99));
}

TEST(AnchorTable, DirectoryMoveRewiresChains) {
  AnchorTable t;
  t.anchor(10, {3, 2, 1});
  // Directory 3 moves from under 2 to under 5 (5 under 1).
  t.on_directory_move(3, {5, 1});
  EXPECT_EQ(t.resolve(10), (std::vector<InodeId>{3, 5, 1}));
  // Old ancestor 2 dropped once its refcount drained.
  EXPECT_EQ(t.refs(2), 0u);
  EXPECT_GT(t.refs(5), 0u);
  EXPECT_TRUE(t.unanchor(10));
  EXPECT_EQ(t.size(), 0u);
}

TEST(AnchorTable, MoveOfUntrackedDirIsNoop) {
  AnchorTable t;
  t.anchor(10, {3, 2, 1});
  t.on_directory_move(77, {1});
  EXPECT_EQ(t.size(), 4u);
}

TEST(AnchorTable, TableStaysProportionalToLinks) {
  AnchorTable t;
  // 100 anchored files sharing one deep chain: size = files + chain.
  for (InodeId f = 100; f < 200; ++f) t.anchor(f, {9, 8, 7, 1});
  EXPECT_EQ(t.size(), 104u);
  for (InodeId f = 100; f < 200; ++f) t.unanchor(f);
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace mdsim

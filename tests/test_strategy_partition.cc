// Namespace-partition *strategies* (static/dynamic subtree, dir/file
// hash): how the metadata tree is divided among MDS nodes. Not to be
// confused with test_net_partition.cc, which covers *network* partitions
// (split fabric, fencing, quorum takeover).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fstree/generator.h"
#include "strategy/partition.h"

namespace mdsim {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() {
    NamespaceParams params;
    params.num_users = 16;
    params.nodes_per_user = 100;
    info = generate_namespace(tree, params);
  }
  FsTree tree;
  NamespaceInfo info;
};

TEST_F(PartitionTest, TraitsTable) {
  const StrategyTraits dyn = traits_for(StrategyKind::kDynamicSubtree);
  EXPECT_TRUE(dyn.whole_directory_io);
  EXPECT_TRUE(dyn.path_traversal);
  EXPECT_FALSE(dyn.client_computes_location);
  EXPECT_TRUE(dyn.load_balancing);
  EXPECT_TRUE(dyn.traffic_control);
  EXPECT_TRUE(dyn.dynamic_dirfrag);

  const StrategyTraits sta = traits_for(StrategyKind::kStaticSubtree);
  EXPECT_TRUE(sta.whole_directory_io);
  EXPECT_FALSE(sta.load_balancing);
  EXPECT_FALSE(sta.traffic_control);

  const StrategyTraits dh = traits_for(StrategyKind::kDirHash);
  EXPECT_TRUE(dh.whole_directory_io);
  EXPECT_TRUE(dh.path_traversal);
  EXPECT_TRUE(dh.client_computes_location);

  const StrategyTraits fh = traits_for(StrategyKind::kFileHash);
  EXPECT_FALSE(fh.whole_directory_io);
  EXPECT_TRUE(fh.path_traversal);

  const StrategyTraits lh = traits_for(StrategyKind::kLazyHybrid);
  EXPECT_FALSE(lh.whole_directory_io);
  EXPECT_FALSE(lh.path_traversal);
  EXPECT_TRUE(lh.client_computes_location);
}

TEST_F(PartitionTest, SubtreeDelegationNesting) {
  SubtreePartition p(StrategyKind::kDynamicSubtree, 4);
  FsNode* home = info.home;
  FsNode* u0 = info.user_roots[0];
  FsNode* u1 = info.user_roots[1];

  // Nothing delegated: everything belongs to MDS 0.
  EXPECT_EQ(p.authority_of(u0), 0);

  p.delegate(home, 1);
  EXPECT_EQ(p.authority_of(u0), 1);
  EXPECT_EQ(p.authority_of(tree.root()), 0);

  // Nested delegation overrides the enclosing one (paper: /usr to one
  // MDS, /usr/local reassigned to another).
  p.delegate(u0, 2);
  EXPECT_EQ(p.authority_of(u0), 2);
  EXPECT_EQ(p.authority_of(u1), 1);
  for (const auto& [_, child] : u0->children()) {
    EXPECT_EQ(p.authority_of(child.get()), 2);
  }

  p.undelegate(u0);
  EXPECT_EQ(p.authority_of(u0), 1);
}

TEST_F(PartitionTest, DelegateReturnsPreviousHolder) {
  SubtreePartition p(StrategyKind::kDynamicSubtree, 4);
  EXPECT_EQ(p.delegate(info.home, 1), 0);
  EXPECT_EQ(p.delegate(info.user_roots[0], 3), 1);
}

TEST_F(PartitionTest, DelegationsOfListsOwned) {
  SubtreePartition p(StrategyKind::kDynamicSubtree, 4);
  p.delegate(info.user_roots[0], 2);
  p.delegate(info.user_roots[1], 2);
  p.delegate(info.user_roots[2], 3);
  const auto owned = p.delegations_of(2);
  EXPECT_EQ(owned.size(), 2u);
  EXPECT_EQ(p.delegation_count(), 3u);
  EXPECT_TRUE(p.is_delegation_point(info.user_roots[0]));
  EXPECT_FALSE(p.is_delegation_point(info.user_roots[3]));
}

TEST_F(PartitionTest, InitialPartitionCoversAllServers) {
  SubtreePartition p(StrategyKind::kStaticSubtree, 4);
  p.initialize_by_hashing_top_dirs(tree);
  // 16 user dirs hashed over 4 nodes: every node should own some homes.
  std::map<MdsId, int> counts;
  for (FsNode* u : info.user_roots) ++counts[p.authority_of(u)];
  EXPECT_GE(counts.size(), 3u);  // at least most nodes get territory
  // Authority is constant within a home subtree.
  FsNode* u0 = info.user_roots[0];
  const MdsId auth = p.authority_of(u0);
  u0->ancestry();  // no-op sanity
  tree.visit([&](FsNode* n) {
    if (FsTree::is_ancestor_of(u0, n)) {
      EXPECT_EQ(p.authority_of(n), auth) << n->path();
    }
  });
}

TEST_F(PartitionTest, DirHashGroupsSiblings) {
  HashPartition p(StrategyKind::kDirHash, 8);
  FsNode* u0 = info.user_roots[0];
  // All children of a directory share an authority (dentries grouped).
  std::set<MdsId> auths;
  for (const auto& [_, child] : u0->children()) {
    auths.insert(p.authority_of(child.get()));
  }
  EXPECT_EQ(auths.size(), 1u);
  // But different directories scatter across the cluster.
  std::set<MdsId> dir_auths;
  for (FsNode* u : info.user_roots) {
    if (!u->children().empty()) {
      dir_auths.insert(p.authority_of(u->children().begin()->second.get()));
    }
  }
  EXPECT_GT(dir_auths.size(), 3u);
}

TEST_F(PartitionTest, FileHashScattersSiblings) {
  HashPartition p(StrategyKind::kFileHash, 8);
  std::set<MdsId> auths;
  FsNode* big = nullptr;
  for (FsNode* u : info.user_roots) {
    if (big == nullptr || u->child_count() > big->child_count()) big = u;
  }
  ASSERT_GE(big->child_count(), 4u);
  for (const auto& [_, child] : big->children()) {
    auths.insert(p.authority_of(child.get()));
  }
  EXPECT_GT(auths.size(), 1u);
}

TEST_F(PartitionTest, HashSpreadIsBalanced) {
  HashPartition p(StrategyKind::kFileHash, 8);
  std::map<MdsId, int> counts;
  for (FsNode* f : tree.files()) ++counts[p.authority_of(f)];
  const double expected =
      static_cast<double>(tree.files().size()) / 8.0;
  for (const auto& [mds, count] : counts) {
    EXPECT_GT(mds, -1);
    EXPECT_LT(mds, 8);
    EXPECT_NEAR(count, expected, expected * 0.35);
  }
}

TEST_F(PartitionTest, FileHashFollowsRename) {
  HashPartition p(StrategyKind::kFileHash, 8);
  FsNode* f = tree.files()[0];
  FsNode* dst = info.user_roots[5];
  const MdsId before = p.authority_of(f);
  ASSERT_TRUE(tree.rename(f, dst, "relocated_xyz"));
  // Location is a function of the path; at least the mapping stays
  // deterministic and in range.
  const MdsId after = p.authority_of(f);
  EXPECT_GE(after, 0);
  EXPECT_LT(after, 8);
  EXPECT_EQ(p.authority_of(f), after);
  (void)before;
}

TEST_F(PartitionTest, FactoryMatchesKind) {
  for (StrategyKind k :
       {StrategyKind::kDynamicSubtree, StrategyKind::kStaticSubtree,
        StrategyKind::kDirHash, StrategyKind::kFileHash,
        StrategyKind::kLazyHybrid}) {
    auto p = make_partitioner(k, 4, tree);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), k);
    // Every node resolves to a valid authority.
    const MdsId a = p->authority_of(tree.files()[0]);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

}  // namespace
}  // namespace mdsim

// Property / stress tests: whole-cluster invariants under adversarial
// configurations — tiny caches, repeated failures, migration churn, and
// every strategy. These are the "does the machine ever wedge or corrupt
// its bookkeeping" checks, complementing the per-module unit tests.
#include <gtest/gtest.h>

#include "test_util.h"

namespace mdsim {
namespace {

/// No client may be wedged: at most one op in flight each, and the
/// completed counts must track the issued counts.
void expect_clients_live(ClusterSim& cluster) {
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientStats& s = cluster.client(c).stats();
    EXPECT_LE(s.ops_completed, s.ops_issued) << "client " << c;
    EXPECT_LE(s.ops_issued - s.ops_completed, 1u + s.retries)
        << "client " << c;
  }
}

void expect_caches_sane(ClusterSim& cluster) {
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "") << "mds " << i;
  }
}

class TinyCacheStress : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(TinyCacheStress, SurvivesSevereCachePressure) {
  SimConfig cfg;
  cfg.strategy = GetParam();
  cfg.num_mds = 4;
  cfg.num_clients = 80;
  cfg.fs.num_users = 24;
  cfg.fs.nodes_per_user = 250;
  cfg.mds.cache_capacity = 150;  // ~2% of the per-node metadata share
  cfg.mds.journal_capacity = 150;
  cfg.duration = 8 * kSecond;
  cfg.warmup = 2 * kSecond;
  ClusterSim cluster(cfg);
  cluster.run();
  EXPECT_GT(cluster.metrics().total_replies(), 200u);
  expect_caches_sane(cluster);
  expect_clients_live(cluster);
  // Under this pressure caches must be thrashing, not wedged.
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_GT(cluster.mds(i).cache().stats().evictions, 50u) << i;
    EXPECT_LE(cluster.mds(i).cache().size(),
              cluster.mds(i).cache().capacity() + 64);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, TinyCacheStress,
    ::testing::Values(StrategyKind::kDynamicSubtree,
                      StrategyKind::kStaticSubtree, StrategyKind::kDirHash,
                      StrategyKind::kFileHash, StrategyKind::kLazyHybrid),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      return strategy_name(info.param);
    });

class FailureChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureChaos, RepeatedKillAndRecoverNeverWedges) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 5;
  cfg.num_clients = 100;
  cfg.seed = GetParam();
  cfg.fs.seed = GetParam();
  cfg.fs.num_users = 30;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 40 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.client_retry.request_timeout = 500 * kMillisecond;
  ClusterSim cluster(cfg);

  Rng rng(GetParam(), 0xc4a05);
  SimTime t = 4 * kSecond;
  MdsId down = kInvalidMds;
  for (int round = 0; round < 6; ++round) {
    cluster.run_until(t);
    if (down == kInvalidMds) {
      // Never kill node 0's last survivor; one down at a time.
      down = static_cast<MdsId>(1 + rng.uniform(cfg.num_mds - 1));
      cluster.fail_mds(down, rng.bernoulli(0.5));
    } else {
      cluster.recover_mds(down);
      down = kInvalidMds;
    }
    t += 5 * kSecond;
  }
  cluster.run_until(cfg.duration);

  expect_caches_sane(cluster);
  expect_clients_live(cluster);
  // The cluster kept making progress in the final stretch.
  EXPECT_GT(cluster.metrics().avg_throughput().mean_in(35 * kSecond,
                                                       40 * kSecond),
            50.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureChaos,
                         ::testing::Values(101u, 202u, 303u));

TEST(MigrationChurn, RepeatedForcedMigrationsStayConsistent) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.num_clients = 60;
  cfg.num_mds = 4;
  cfg.fs.num_users = 16;
  cfg.fs.nodes_per_user = 200;
  cfg.mds.min_migration_items = 2;
  ClusterSim cluster(cfg);
  cluster.run_until(4 * kSecond);

  // Bounce the largest home around the cluster.
  FsNode* home = cluster.namespace_info().user_roots[0];
  for (FsNode* u : cluster.namespace_info().user_roots) {
    if (u->subtree_size() > home->subtree_size()) home = u;
  }
  SimTime t = cluster.sim().now();
  for (int hop = 0; hop < 8; ++hop) {
    const MdsId owner = cluster.mds(0).authority_for(home);
    const MdsId target =
        static_cast<MdsId>((owner + 1 + hop) % cluster.num_mds());
    if (target != owner) {
      cluster.mds(owner).migrate_subtree(home, target);
    }
    t += 2 * kSecond;
    cluster.run_until(t);
    // Exactly one authority at any quiescent point.
    const MdsId now_owner = cluster.mds(0).authority_for(home);
    EXPECT_GE(now_owner, 0);
    EXPECT_LT(now_owner, cluster.num_mds());
    for (int i = 0; i < cluster.num_mds(); ++i) {
      EXPECT_EQ(cluster.mds(i).frozen_subtrees(), 0u) << "hop " << hop;
    }
    // Full structural audit after every migration phase: counters, LRU
    // links, index and sidecar linkage must all still be consistent.
    expect_caches_sane(cluster);
  }
  // Clients kept completing ops throughout the churn.
  std::uint64_t completed = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    completed += cluster.client(c).stats().ops_completed;
  }
  EXPECT_GT(completed, 1000u);
}

TEST(WorkloadSoup, AllWorkloadsRunOnAllStrategiesBriefly) {
  for (WorkloadKind wk :
       {WorkloadKind::kGeneral, WorkloadKind::kScientific,
        WorkloadKind::kShifting}) {
    for (StrategyKind sk :
         {StrategyKind::kDynamicSubtree, StrategyKind::kFileHash}) {
      if (wk == WorkloadKind::kShifting &&
          sk != StrategyKind::kDynamicSubtree) {
        continue;  // shift preset needs a subtree partition
      }
      SimConfig cfg;
      cfg.strategy = sk;
      cfg.workload = wk;
      cfg.num_mds = 3;
      cfg.num_clients = 45;
      cfg.fs.num_users = 12;
      cfg.fs.nodes_per_user = 120;
      cfg.fs.num_projects = wk == WorkloadKind::kScientific ? 1 : 0;
      cfg.shifting.shift_at = 2 * kSecond;
      cfg.duration = 5 * kSecond;
      cfg.warmup = kSecond;
      ClusterSim cluster(cfg);
      cluster.run();
      EXPECT_GT(cluster.metrics().total_replies(), 100u)
          << workload_name(wk) << "/" << strategy_name(sk);
      expect_caches_sane(cluster);
    }
  }
}

TEST(LongRun, HalfMinuteOfEverythingHoldsInvariants) {
  SimConfig cfg = shift_config(StrategyKind::kDynamicSubtree);
  cfg.num_mds = 6;
  cfg.fs.num_users = 96;
  cfg.num_clients = 240;
  cfg.duration = 30 * kSecond;
  cfg.shifting.shift_at = 10 * kSecond;
  cfg.mds.dirfrag_temp_threshold = 200.0;  // let dirfrag engage too
  ClusterSim cluster(cfg);
  cluster.run_until(20 * kSecond);
  expect_caches_sane(cluster);
  cluster.fail_mds(3);
  cluster.run_until(25 * kSecond);
  expect_caches_sane(cluster);
  cluster.recover_mds(3);
  cluster.run_until(30 * kSecond);
  expect_caches_sane(cluster);
  expect_clients_live(cluster);
  EXPECT_LT(cluster.metrics().total_failures(),
            cluster.metrics().total_replies() / 3);
}

}  // namespace
}  // namespace mdsim

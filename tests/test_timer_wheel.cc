#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/simulation.h"
#include "sim/timer_wheel.h"

namespace mdsim {
namespace {

struct Fired {
  std::uint32_t index;
  std::uint32_t stamp;
  SimTime at;
};

/// A wheel wired to record every firing with its simulated timestamp.
struct WheelHarness {
  Simulation sim;
  std::vector<Fired> fired;
  TimerWheel wheel;

  explicit WheelHarness(SimTime granularity = from_micros(128),
                        std::uint32_t slots = 1u << 16)
      : wheel(
            sim,
            [this](std::uint32_t i, std::uint32_t s) {
              fired.push_back({i, s, sim.now()});
            },
            granularity, slots) {}
};

TEST(TimerWheel, QuantizesUpNeverEarly) {
  WheelHarness h(100);
  const SimTime dues[] = {1, 37, 99, 100, 101, 250, 537};
  std::uint32_t idx = 0;
  for (SimTime due : dues) h.wheel.arm(idx++, 0, due);
  h.sim.run();
  ASSERT_EQ(h.fired.size(), std::size(dues));
  for (const Fired& f : h.fired) {
    const SimTime due = dues[f.index];
    EXPECT_GE(f.at, due) << "fired early";
    EXPECT_LT(f.at - due, 100) << "more than one granule late";
    EXPECT_EQ(f.at % 100, 0u) << "not on a bucket boundary";
  }
}

TEST(TimerWheel, ExactBoundaryKeepsItsBoundary) {
  WheelHarness h(100);
  h.wheel.arm(0, 0, 300);
  h.sim.run();
  ASSERT_EQ(h.fired.size(), 1u);
  EXPECT_EQ(h.fired[0].at, 300);
}

TEST(TimerWheel, BucketFiresInInsertionOrder) {
  WheelHarness h(100);
  // All five land in the 200-tick bucket; 150 and 200 quantize to the
  // same boundary as the rest.
  h.wheel.arm(3, 0, 150);
  h.wheel.arm(1, 0, 200);
  h.wheel.arm(4, 0, 101);
  h.wheel.arm(0, 0, 199);
  h.wheel.arm(2, 0, 150);
  h.sim.run();
  ASSERT_EQ(h.fired.size(), 5u);
  const std::uint32_t want[] = {3, 1, 4, 0, 2};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h.fired[i].index, want[i]);
    EXPECT_EQ(h.fired[i].at, 200);
  }
}

TEST(TimerWheel, StampIsEchoedVerbatim) {
  WheelHarness h(100);
  h.wheel.arm(7, 0xdeadbeefu, 50);
  h.sim.run();
  ASSERT_EQ(h.fired.size(), 1u);
  EXPECT_EQ(h.fired[0].index, 7u);
  EXPECT_EQ(h.fired[0].stamp, 0xdeadbeefu);
}

TEST(TimerWheel, LappedEntryFiresOnTheRightRevolution) {
  // Horizon = 8 slots x 100 = 800; due 2500 is three revolutions out.
  WheelHarness h(100, 8);
  h.wheel.arm(0, 0, 2500);
  h.sim.run();
  ASSERT_EQ(h.fired.size(), 1u);
  EXPECT_EQ(h.fired[0].at, 2500);
  EXPECT_EQ(h.wheel.fired(), 1u);
  EXPECT_EQ(h.wheel.armed(), 0u);
}

TEST(TimerWheel, FirstArmBeyondHorizonStillWakes) {
  // Regression: with nothing pending, an arm whose lap count is nonzero
  // must still start the wake chain (the bucket's next occurrence), or
  // the entry sleeps forever.
  WheelHarness h(100, 8);
  h.wheel.arm(0, 0, 2500);
  EXPECT_GT(h.sim.events_pending(), 0u)
      << "no engine event armed for a lapped entry";
  h.sim.run();
  ASSERT_EQ(h.fired.size(), 1u);
  EXPECT_EQ(h.fired[0].at, 2500);
}

TEST(TimerWheel, IdleGapDoesNotInflateLapCounts) {
  // Regression: current_tick_ used to advance only when a bucket fired,
  // so arming after a long idle stretch measured the lap count from the
  // last firing — the timer fired revolutions late.
  WheelHarness h(100, 8);
  h.wheel.arm(0, 1, 100);
  h.sim.run();  // wheel now idle at t=100
  // Idle through many revolutions of the 800-tick horizon.
  h.sim.schedule(9900, [] {});
  h.sim.run();
  ASSERT_EQ(h.sim.now(), 10000);
  h.wheel.arm(0, 2, 10050);
  h.sim.run();
  ASSERT_EQ(h.fired.size(), 2u);
  EXPECT_EQ(h.fired[1].stamp, 2u);
  EXPECT_EQ(h.fired[1].at, 10100) << "fired on the wrong revolution";
}

TEST(TimerWheel, DueNowFiresAtNextTick) {
  WheelHarness h(100);
  h.sim.schedule(500, [] {});
  h.sim.run();
  ASSERT_EQ(h.sim.now(), 500);
  h.wheel.arm(0, 0, 500);  // due == now: next boundary, never the past
  h.sim.run();
  ASSERT_EQ(h.fired.size(), 1u);
  EXPECT_EQ(h.fired[0].at, 600);
}

TEST(TimerWheel, RearmFromFireCallbackLandsInSameBucketNextLap) {
  // Firing may arm into the very bucket being serviced; the swap-out in
  // service() must keep that entry for the *next* revolution.
  Simulation sim;
  std::vector<SimTime> at;
  TimerWheel* wheel = nullptr;
  TimerWheel w(
      sim,
      [&](std::uint32_t idx, std::uint32_t) {
        at.push_back(sim.now());
        if (at.size() < 3) wheel->arm(idx, 0, sim.now() + 800);
      },
      100, 8);
  wheel = &w;
  w.arm(0, 0, 100);
  sim.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 100);
  EXPECT_EQ(at[1], 900);
  EXPECT_EQ(at[2], 1700);
}

TEST(TimerWheel, CountersTrackArmAndFire) {
  WheelHarness h(100);
  h.wheel.arm(0, 0, 100);
  h.wheel.arm(1, 0, 200);
  EXPECT_EQ(h.wheel.armed(), 2u);
  EXPECT_EQ(h.wheel.fired(), 0u);
  h.sim.run();
  EXPECT_EQ(h.wheel.armed(), 0u);
  EXPECT_EQ(h.wheel.fired(), 2u);
}

TEST(TimerWheel, ManyTimersOneEngineEventPerBoundary) {
  // The wheel's reason to exist: N timers in one bucket cost one engine
  // event, not N.
  WheelHarness h(100);
  for (std::uint32_t i = 0; i < 1000; ++i) h.wheel.arm(i, 0, 499);
  const std::uint64_t before = h.sim.events_executed();
  h.sim.run();
  EXPECT_EQ(h.fired.size(), 1000u);
  EXPECT_EQ(h.sim.events_executed() - before, 1u);
}

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include "fstree/generator.h"
#include "test_util.h"
#include "workload/trace.h"

namespace mdsim {
namespace {

std::unique_ptr<GeneralWorkload> make_inner(FsTree& tree,
                                            NamespaceInfo& info) {
  return std::make_unique<GeneralWorkload>(tree, info.user_roots);
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    params.seed = 7;
    params.num_users = 8;
    params.nodes_per_user = 120;
    info = generate_namespace(tree, params);
  }
  NamespaceParams params;
  FsTree tree;
  NamespaceInfo info;
};

TEST_F(TraceTest, RecorderCapturesEverything) {
  RecordingWorkload rec(make_inner(tree, info));
  Rng rng(1);
  Operation op;
  int produced = 0;
  for (ClientId c = 0; c < 4; ++c) {
    for (int i = 0; i < 50; ++i) {
      if (rec.next(c, i * kMillisecond, rng, &op) != kNever) ++produced;
    }
  }
  EXPECT_EQ(rec.trace().size(), static_cast<std::size_t>(produced));
  EXPECT_EQ(rec.trace().num_clients(), 4);
}

TEST_F(TraceTest, ReplayReproducesTheRecordedStream) {
  RecordingWorkload rec(make_inner(tree, info));
  Rng rng(2);
  Operation op;
  std::vector<TraceEvent> want;
  for (int i = 0; i < 200; ++i) {
    const ClientId c = i % 3;
    const SimTime think = rec.next(c, 0, rng, &op);
    ASSERT_NE(think, kNever);
    want.push_back(TraceEvent{c, think, op.op, op.target->ino(),
                              op.secondary ? op.secondary->ino()
                                           : kInvalidInode,
                              op.name});
  }

  // Replay against the SAME tree (no mutations happened): identical.
  TraceWorkload replay(tree, rec.take_trace());
  Rng rng2(99);  // replay ignores the RNG
  std::size_t idx[3] = {0, 0, 0};
  // Recorded events per client, in order:
  std::vector<std::vector<TraceEvent>> per_client(3);
  for (const auto& ev : want) {
    per_client[static_cast<std::size_t>(ev.client)].push_back(ev);
  }
  for (ClientId c = 0; c < 3; ++c) {
    Operation got;
    SimTime think;
    while ((think = replay.next(c, 0, rng2, &got)) != kNever) {
      const auto& exp =
          per_client[static_cast<std::size_t>(c)][idx[c]++];
      EXPECT_EQ(got.op, exp.op);
      EXPECT_EQ(got.target->ino(), exp.target);
      EXPECT_EQ(got.name, exp.name);
      EXPECT_EQ(think, exp.think);
    }
    EXPECT_EQ(idx[c], per_client[static_cast<std::size_t>(c)].size());
  }
  EXPECT_EQ(replay.skipped(), 0u);
}

TEST_F(TraceTest, SaveLoadRoundTrip) {
  RecordingWorkload rec(make_inner(tree, info));
  Rng rng(3);
  Operation op;
  for (int i = 0; i < 100; ++i) rec.next(i % 2, 0, rng, &op);
  const Trace& t = rec.trace();
  const std::string path = ::testing::TempDir() + "/mdsim_trace.csv";
  t.save(path);
  const Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(loaded.events()[i].client, t.events()[i].client);
    EXPECT_EQ(loaded.events()[i].think, t.events()[i].think);
    EXPECT_EQ(loaded.events()[i].op, t.events()[i].op);
    EXPECT_EQ(loaded.events()[i].target, t.events()[i].target);
    EXPECT_EQ(loaded.events()[i].secondary, t.events()[i].secondary);
    EXPECT_EQ(loaded.events()[i].name, t.events()[i].name);
  }
}

TEST_F(TraceTest, LoadMissingFileIsEmpty) {
  EXPECT_TRUE(Trace::load("/nonexistent/mdsim.csv").empty());
}

TEST_F(TraceTest, ReplaySkipsUnlinkedTargets) {
  RecordingWorkload rec(make_inner(tree, info));
  Rng rng(4);
  Operation op;
  for (int i = 0; i < 300; ++i) rec.next(0, 0, rng, &op);
  Trace trace = rec.take_trace();
  // Unlink one traced file from the snapshot before replaying.
  FsNode* victim = nullptr;
  for (const auto& ev : trace.events()) {
    FsNode* n = tree.by_ino(ev.target);
    if (n != nullptr && !n->is_dir()) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  const InodeId gone = victim->ino();
  ASSERT_TRUE(tree.remove(victim));

  TraceWorkload replay(tree, std::move(trace));
  Operation got;
  while (replay.next(0, 0, rng, &got) != kNever) {
    EXPECT_NE(got.target->ino(), gone);
  }
  EXPECT_GT(replay.skipped(), 0u);
}

TEST(TraceCluster, RecordedTraceDrivesACluster) {
  // Record a run, rebuild the identical namespace, replay the trace
  // through a full cluster: the replay must execute and serve load.
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  Trace trace;
  {
    FsTree tree;
    NamespaceParams p = cfg.fs;
    NamespaceInfo info = generate_namespace(tree, p);
    RecordingWorkload rec(
        std::make_unique<GeneralWorkload>(tree, info.user_roots));
    Rng rng(5);
    Operation op;
    for (int i = 0; i < 2000; ++i) rec.next(i % 20, 0, rng, &op);
    trace = rec.take_trace();
  }

  ClusterSim cluster(cfg);
  cluster.run_until(0);  // build the matching snapshot
  auto replay =
      std::make_unique<TraceWorkload>(cluster.tree(), std::move(trace));
  TraceWorkload* replay_ptr = replay.get();

  // Drive the replay through hand-attached clients.
  std::vector<std::unique_ptr<Client>> clients;
  for (ClientId c = 0; c < 20; ++c) {
    clients.push_back(std::make_unique<Client>(
        cluster.sim(), cluster.network(), cluster.tree(), *replay,
        cluster.partition(), cluster.dirfrag(), c, cluster.num_mds(), 5));
    clients.back()->start();
  }
  cluster.sim().run_until(60 * kSecond);

  std::uint64_t completed = 0;
  for (auto& c : clients) completed += c->stats().ops_completed;
  EXPECT_GT(completed, 1500u);
  // Ops referencing inodes created during the *recording* run have no
  // counterpart in the fresh snapshot; those (and only those) skip.
  EXPECT_LT(replay_ptr->skipped(), 400u);
}

}  // namespace
}  // namespace mdsim

// Per-request tracing: record tiling invariants, collector aggregation,
// and the end-to-end reconciliation / determinism / zero-perturbation
// guarantees of src/common/trace.h.
#include <gtest/gtest.h>

#include "common/trace.h"
#include "test_util.h"

namespace mdsim {
namespace {

// ---------------------------------------------------------------------------
// TraceRecord unit behaviour.

TEST(TraceRecord, SegmentsTileTheRequestInterval) {
  TraceRecord r;
  r.begin(/*rid=*/7, /*c=*/3, OpType::kStat, /*now=*/100);
  r.advance(TraceStage::kNetRequest, 150, 7);
  r.advance(TraceStage::kCpuQueue, 180, 7);
  r.advance(TraceStage::kCpuService, 400, 7);
  r.advance(TraceStage::kNetReply, 460, 7);
  EXPECT_EQ(r.stage(TraceStage::kNetRequest), 50u);
  EXPECT_EQ(r.stage(TraceStage::kCpuQueue), 30u);
  EXPECT_EQ(r.stage(TraceStage::kCpuService), 220u);
  EXPECT_EQ(r.stage(TraceStage::kNetReply), 60u);
  EXPECT_EQ(r.stage_sum(), 460u - 100u);  // tiling: segments partition it
}

TEST(TraceRecord, StaleRequestIdAttributesNothing) {
  TraceRecord r;
  r.begin(7, 0, OpType::kOpen, 100);
  r.advance(TraceStage::kNetRequest, 150, /*rid=*/6);  // stale instance
  EXPECT_EQ(r.stage_sum(), 0u);
  EXPECT_EQ(r.last, 100u);  // boundary untouched by the rejected segment
  r.advance(TraceStage::kNetRequest, 150, 7);
  EXPECT_EQ(r.stage_sum(), 50u);
}

TEST(TraceRecord, RearmChargesGapToStallAndSwapsInstance) {
  TraceRecord r;
  r.begin(7, 0, OpType::kStat, 100);
  r.advance(TraceStage::kNetRequest, 150, 7);
  // Timeout + backoff: re-issue as rid 8 at t=5000.
  r.rearm(8, 5000);
  EXPECT_EQ(r.stage(TraceStage::kStallWait), 5000u - 150u);
  EXPECT_EQ(r.retries, 1);
  // Old instance still draining through the cluster: ignored.
  r.advance(TraceStage::kCpuService, 5200, 7);
  EXPECT_EQ(r.stage(TraceStage::kCpuService), 0u);
  // New instance attributes normally and the tiling still holds.
  r.advance(TraceStage::kNetRequest, 5100, 8);
  r.advance(TraceStage::kNetReply, 5300, 8);
  EXPECT_EQ(r.stage_sum(), 5300u - 100u);
}

TEST(TraceRecord, SkipPreattributesDeterministicInterval) {
  TraceRecord r;
  r.begin(1, 0, OpType::kReaddir, 0);
  r.advance(TraceStage::kDiskService, 100, 1);
  r.skip(TraceStage::kDiskService, 40, 1);  // disk access-latency tail
  EXPECT_EQ(r.stage(TraceStage::kDiskService), 140u);
  EXPECT_EQ(r.last, 140u);
  // The completion callback fires at t=140; the resume mark adds zero.
  r.advance(TraceStage::kFetchWait, 140, 1);
  EXPECT_EQ(r.stage(TraceStage::kFetchWait), 0u);
  EXPECT_EQ(r.stage_sum(), 140u);
}

TEST(TraceSpan, InertWhenRecordIsNull) {
  TraceSpan span;  // tracing off: default-constructed everywhere
  EXPECT_FALSE(span);
  span.on_service_start(100);  // must not crash
  span.on_service_end(200, 50);
}

// ---------------------------------------------------------------------------
// TraceCollector aggregation.

TraceRecord make_op(std::uint64_t rid, ClientId c, OpType op, SimTime start,
                    SimTime net, SimTime cpu) {
  TraceRecord r;
  r.begin(rid, c, op, start);
  r.advance(TraceStage::kNetRequest, start + net, rid);
  r.advance(TraceStage::kCpuService, start + net + cpu, rid);
  return r;
}

TEST(TraceCollector, StageSumsReconcileWithTotals) {
  TraceCollector tc(8);
  TraceRecord a = make_op(1, 0, OpType::kStat, 0, 50, 200);
  tc.complete(a, 250);
  TraceRecord b = make_op(2, 1, OpType::kStat, 1000, 70, 400);
  tc.complete(b, 1470);
  EXPECT_EQ(tc.completed(), 2u);
  EXPECT_EQ(tc.completed(OpType::kStat), 2u);
  EXPECT_EQ(tc.total_ns(OpType::kStat), 250u + 470u);
  std::uint64_t stage_sum = 0;
  for (int s = 0; s < kNumTraceStages; ++s) {
    stage_sum += tc.stage_total_ns(static_cast<TraceStage>(s), OpType::kStat);
  }
  EXPECT_EQ(stage_sum, tc.total_ns(OpType::kStat));
  EXPECT_EQ(tc.grand_total_ns(), tc.total_ns(OpType::kStat));
}

TEST(TraceCollector, SlowestKeepsTopNInDeterministicOrder) {
  TraceCollector tc(3);
  for (int i = 0; i < 10; ++i) {
    // Totals 100, 200, ..., 1000 ns.
    TraceRecord r = make_op(static_cast<std::uint64_t>(i + 1),
                            static_cast<ClientId>(i), OpType::kOpen,
                            static_cast<SimTime>(i) * 10000, 0,
                            static_cast<SimTime>(i + 1) * 100);
    tc.complete(r, r.start + static_cast<SimTime>(i + 1) * 100);
  }
  const auto slow = tc.slowest();
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0].total(), 1000u);
  EXPECT_EQ(slow[1].total(), 900u);
  EXPECT_EQ(slow[2].total(), 800u);
}

TEST(TraceCollector, SlowestTiesBreakOnStartThenClient) {
  TraceCollector tc(2);
  for (ClientId c : {ClientId{5}, ClientId{2}, ClientId{9}}) {
    TraceRecord r = make_op(1, c, OpType::kStat, /*start=*/1000, 0, 100);
    tc.complete(r, 1100);
  }
  const auto slow = tc.slowest();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].rec.client, 2);
  EXPECT_EQ(slow[1].rec.client, 5);
}

TEST(TraceCollector, ResetDropsEverything) {
  TraceCollector tc(4);
  TraceRecord r = make_op(1, 0, OpType::kStat, 0, 10, 20);
  tc.complete(r, 30);
  tc.reset();
  EXPECT_EQ(tc.completed(), 0u);
  EXPECT_EQ(tc.grand_total_ns(), 0u);
  EXPECT_TRUE(tc.slowest().empty());
  EXPECT_EQ(tc.total_hist(OpType::kStat).total_count(), 0u);
}

// ---------------------------------------------------------------------------
// Cluster integration: reconciliation, determinism, zero perturbation.

SimConfig traced_config(std::uint64_t seed = 42) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 3;
  cfg.num_clients = 60;
  cfg.seed = seed;
  cfg.fs.num_users = 12;
  cfg.fs.nodes_per_user = 150;
  cfg.duration = 8 * kSecond;
  cfg.warmup = 2 * kSecond;
  // Small cache so fetch/disk stages actually occur.
  cfg.cache_fraction = 0.4;
  cfg.trace.enabled = true;
  cfg.trace.slowest_n = 16;
  return cfg;
}

TEST(TracingCluster, CompletionsMatchClientLatencySamples) {
  ClusterSim cluster(traced_config());
  cluster.run();
  TraceCollector* tr = cluster.tracer();
  ASSERT_NE(tr, nullptr);
  const Summary lat = cluster.metrics().client_latency();
  EXPECT_GT(tr->completed(), 100u);
  // Every accepted reply lands in both the latency Summary and the
  // collector; give-up paths land in neither.
  EXPECT_EQ(tr->completed(), lat.count());
  const double traced_s = static_cast<double>(tr->grand_total_ns()) / 1e9;
  EXPECT_NEAR(traced_s, lat.sum(), lat.sum() * 1e-6);
}

TEST(TracingCluster, StageSumsTileEndToEndPerOp) {
  ClusterSim cluster(traced_config());
  cluster.run();
  TraceCollector* tr = cluster.tracer();
  ASSERT_NE(tr, nullptr);
  // Exact integer equality per op type: the per-request tiling invariant
  // survives aggregation with no rounding.
  for (int op = 0; op < kNumOpTypes; ++op) {
    const auto o = static_cast<OpType>(op);
    std::uint64_t stage_sum = 0;
    for (int s = 0; s < kNumTraceStages; ++s) {
      stage_sum += tr->stage_total_ns(static_cast<TraceStage>(s), o);
    }
    EXPECT_EQ(stage_sum, tr->total_ns(o)) << "op " << op_name(o);
  }
}

TEST(TracingCluster, SameSeedRunsProduceIdenticalTraces) {
  ClusterSim a(traced_config(7));
  a.run();
  ClusterSim b(traced_config(7));
  b.run();
  TraceCollector* ta = a.tracer();
  TraceCollector* tb = b.tracer();
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(ta->completed(), tb->completed());
  EXPECT_EQ(ta->grand_total_ns(), tb->grand_total_ns());
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int s = 0; s < kNumTraceStages; ++s) {
      EXPECT_EQ(ta->stage_total_ns(static_cast<TraceStage>(s),
                                   static_cast<OpType>(op)),
                tb->stage_total_ns(static_cast<TraceStage>(s),
                                   static_cast<OpType>(op)));
    }
  }
  const auto sa = ta->slowest();
  const auto sb = tb->slowest();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].rec.client, sb[i].rec.client);
    EXPECT_EQ(sa[i].rec.start, sb[i].rec.start);
    EXPECT_EQ(sa[i].total(), sb[i].total());
    EXPECT_EQ(sa[i].rec.op, sb[i].rec.op);
  }
}

TEST(TracingCluster, EnablingTracingDoesNotPerturbResults) {
  SimConfig on = traced_config(11);
  SimConfig off = on;
  off.trace.enabled = false;
  ClusterSim with(on);
  with.run();
  ClusterSim without(off);
  without.run();
  EXPECT_EQ(without.tracer(), nullptr);
  // Tracing only observes simulated time: every simulation-visible result
  // must be bit-identical with it on or off.
  const Summary la = with.metrics().client_latency();
  const Summary lb = without.metrics().client_latency();
  EXPECT_EQ(la.count(), lb.count());
  EXPECT_DOUBLE_EQ(la.mean(), lb.mean());
  EXPECT_DOUBLE_EQ(la.max(), lb.max());
  EXPECT_EQ(with.metrics().total_replies(), without.metrics().total_replies());
  EXPECT_DOUBLE_EQ(with.metrics().cluster_hit_rate(),
                   without.metrics().cluster_hit_rate());
}

TEST(TracingCluster, WarmupResetDropsWarmupTraces) {
  SimConfig cfg = traced_config();
  ClusterSim cluster(cfg);
  cluster.run_until(cfg.warmup + kSecond);
  TraceCollector* tr = cluster.tracer();
  ASSERT_NE(tr, nullptr);
  // Only ~1s of post-warmup completions should be present, and they must
  // still reconcile with the (also reset) latency Summary.
  EXPECT_EQ(tr->completed(), cluster.metrics().client_latency().count());
  ClusterSim no_reset_check(cfg);
  no_reset_check.run_until(cfg.warmup - kSecond);
  // Before the warmup boundary the collector is accumulating normally.
  EXPECT_GT(no_reset_check.tracer()->completed(), 0u);
}

}  // namespace
}  // namespace mdsim

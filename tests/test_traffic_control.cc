#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace mdsim {
namespace {

class TrafficControlTest : public ::testing::Test {
 protected:
  void run_for(ClusterSim& c, SimTime dt) {
    c.run_until(c.sim().now() + dt);
  }
};

TEST_F(TrafficControlTest, HotItemGetsReplicatedEverywhere) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.replication_threshold = 20.0;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* f = cluster.tree().files()[3];
  const MdsId auth = cluster.mds(0).authority_for(f);

  // Hammer the file at its authority until traffic control trips.
  for (int round = 0; round < 40; ++round) {
    client.send(auth, OpType::kStat, f);
    run_for(cluster, 2 * kMillisecond);
  }
  run_for(cluster, 100 * kMillisecond);
  EXPECT_TRUE(cluster.mds(auth).is_replicated_everywhere(f->ino()));
  // Every other node received an unsolicited replica of the hot item.
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_NE(cluster.mds(i).cache().peek(f->ino()), nullptr) << i;
    if (i != auth) {
      EXPECT_TRUE(cluster.mds(i).is_replicated_everywhere(f->ino()));
    }
  }
  // Hints now tell clients the item lives anywhere.
  client.send(auth, OpType::kStat, f);
  run_for(cluster, 50 * kMillisecond);
  bool found = false;
  for (const auto& h : client.last().hints) {
    if (h.ino == f->ino()) {
      EXPECT_TRUE(h.replicated_everywhere);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Any node can now serve reads for it locally.
  const MdsId other = (auth + 1) % cluster.num_mds();
  const std::uint64_t fwd_before = cluster.mds(other).stats().forwards;
  client.send(other, OpType::kStat, f);
  run_for(cluster, 50 * kMillisecond);
  EXPECT_TRUE(client.last().success);
  EXPECT_EQ(client.last().served_by, other);
  EXPECT_EQ(cluster.mds(other).stats().forwards, fwd_before);
}

TEST_F(TrafficControlTest, ColdItemsPointAtAuthorityOnly) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* f = cluster.tree().files()[10];
  const MdsId auth = cluster.mds(0).authority_for(f);
  client.send(auth, OpType::kStat, f);
  run_for(cluster, kSecond);
  for (const auto& h : client.last().hints) {
    if (h.ino == f->ino()) {
      EXPECT_FALSE(h.replicated_everywhere);
      EXPECT_EQ(h.authority, auth);
    }
  }
}

TEST_F(TrafficControlTest, ReplicationCoolsDownAfterCrowd) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.replication_threshold = 20.0;
  cfg.mds.unreplicate_threshold = 5.0;
  cfg.mds.popularity_half_life = kSecond / 2;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* f = cluster.tree().files()[3];
  const MdsId auth = cluster.mds(0).authority_for(f);
  for (int round = 0; round < 40; ++round) {
    client.send(auth, OpType::kStat, f);
    run_for(cluster, 2 * kMillisecond);
  }
  run_for(cluster, 50 * kMillisecond);
  ASSERT_TRUE(cluster.mds(auth).is_replicated_everywhere(f->ino()));
  // Silence: popularity decays; the heartbeat sweep unreplicates.
  run_for(cluster, 20 * kSecond);
  EXPECT_FALSE(cluster.mds(auth).is_replicated_everywhere(f->ino()));
}

TEST_F(TrafficControlTest, DisabledControlNeverReplicates) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.replication_threshold = 20.0;
  cfg.mds.traffic_control_enabled = false;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* f = cluster.tree().files()[3];
  const MdsId auth = cluster.mds(0).authority_for(f);
  for (int round = 0; round < 60; ++round) {
    client.send(auth, OpType::kStat, f);
    run_for(cluster, 2 * kMillisecond);
  }
  run_for(cluster, 100 * kMillisecond);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_FALSE(cluster.mds(i).is_replicated_everywhere(f->ino()));
  }
  // Hints exist but never say "anywhere".
  for (const auto& h : client.last().hints) {
    EXPECT_FALSE(h.replicated_everywhere);
  }
}

TEST_F(TrafficControlTest, CreateStormFragmentsDirectoryThenMerges) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.dirfrag_temp_threshold = 15.0;
  cfg.mds.popularity_half_life = kSecond;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[0];
  const MdsId auth = cluster.mds(0).authority_for(dir);

  for (int i = 0; i < 60; ++i) {
    client.send(auth, OpType::kCreate, dir, "storm" + std::to_string(i));
    run_for(cluster, kMillisecond);
  }
  run_for(cluster, 100 * kMillisecond);
  EXPECT_TRUE(cluster.dirfrag().is_fragmented(dir->ino()));
  EXPECT_GE(cluster.dirfrag().fragment_events, 1u);

  // Fragmented: dentry authorities scatter across the cluster.
  std::set<MdsId> auths;
  for (const auto& [_, c] : dir->children()) {
    auths.insert(cluster.mds(0).authority_for(c.get()));
  }
  EXPECT_GT(auths.size(), 1u);

  // Storm over: the directory consolidates back onto one node.
  run_for(cluster, 30 * kSecond);
  EXPECT_FALSE(cluster.dirfrag().is_fragmented(dir->ino()));
  EXPECT_GE(cluster.dirfrag().merge_events, 1u);
  std::set<MdsId> auths_after;
  for (const auto& [_, c] : dir->children()) {
    auths_after.insert(cluster.mds(0).authority_for(c.get()));
  }
  EXPECT_EQ(auths_after.size(), 1u);
}

TEST_F(TrafficControlTest, FragmentedCreatesStillSucceed) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.dirfrag_temp_threshold = 10.0;
  ClusterSim cluster(cfg);
  TestClient client;
  client.attach(cluster);
  FsNode* dir = cluster.namespace_info().user_roots[1];
  const MdsId auth = cluster.mds(0).authority_for(dir);
  const std::size_t children_before = dir->child_count();
  int sent = 0;
  for (int i = 0; i < 50; ++i) {
    // Route by dentry hash once fragmented, like a real client would.
    MdsId to = auth;
    const std::string name = "frag" + std::to_string(i);
    if (cluster.dirfrag().is_fragmented(dir->ino())) {
      to = cluster.dirfrag().dentry_authority(dir->ino(), name);
    }
    client.send(to, OpType::kCreate, dir, name);
    ++sent;
    run_for(cluster, kMillisecond);
  }
  run_for(cluster, kSecond);
  int ok = 0;
  for (const auto& r : client.replies) ok += r.success ? 1 : 0;
  EXPECT_EQ(ok, sent);
  EXPECT_EQ(dir->child_count(), children_before + 50);
}

}  // namespace
}  // namespace mdsim

// Shared helpers for MDS/cluster tests: a hand-driven client endpoint that
// injects arbitrary requests and records replies.
#pragma once

#include <string>
#include <vector>

#include "core/cluster.h"

namespace mdsim {

class TestClient final : public NetEndpoint {
 public:
  void attach(ClusterSim& cluster) {
    cluster.run_until(0);  // force build
    net_ = &cluster.network();
    sim_ = &cluster.sim();
    addr_ = net_->attach(this);
  }

  void on_message(NetAddr from, MessagePtr msg) override {
    (void)from;
    if (msg->type == MsgType::kClientReply) {
      replies.push_back(static_cast<ClientReplyMsg&>(*msg));
    }
  }

  std::uint64_t send(MdsId to, OpType op, FsNode* target,
                     const std::string& name = "",
                     FsNode* secondary = nullptr, std::uint32_t uid = 0) {
    auto msg = std::make_unique<ClientRequestMsg>();
    msg->req_id = next_id_++;
    msg->client = 9999;
    msg->client_addr = addr_;
    msg->op = op;
    msg->uid = uid;
    msg->target = target->ino();
    msg->secondary = secondary != nullptr ? secondary->ino() : kInvalidInode;
    msg->name = name;
    const std::uint64_t id = msg->req_id;
    net_->send(addr_, to, std::move(msg));
    return id;
  }

  NetAddr addr() const { return addr_; }

  const ClientReplyMsg& last() const { return replies.back(); }
  const ClientReplyMsg* reply_for(std::uint64_t req_id) const {
    for (const auto& r : replies) {
      if (r.req_id == req_id) return &r;
    }
    return nullptr;
  }

  std::vector<ClientReplyMsg> replies;

 private:
  Network* net_ = nullptr;
  Simulation* sim_ = nullptr;
  NetAddr addr_ = kInvalidAddr;
  std::uint64_t next_id_ = 1;
};

/// A file whose whole path is world-traversable (ops from uid 0 succeed).
inline FsNode* find_world_readable_file(FsTree& tree, std::size_t skip = 0) {
  for (FsNode* candidate : tree.files()) {
    bool ok = true;
    for (FsNode* a : candidate->ancestry()) {
      if (a->is_dir() && !a->inode().perms.allows_traverse(0)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (skip > 0) {
      --skip;
      continue;
    }
    return candidate;
  }
  return nullptr;
}

/// Minimal config for hand-driven protocol tests: no simulated clients.
inline SimConfig manual_config(StrategyKind strategy, int num_mds = 3,
                               std::uint64_t seed = 42) {
  SimConfig cfg;
  cfg.strategy = strategy;
  cfg.num_mds = num_mds;
  cfg.num_clients = 0;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 8;
  cfg.fs.nodes_per_user = 120;
  cfg.warmup = 0;
  cfg.duration = 60 * kSecond;
  return cfg;
}

}  // namespace mdsim

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fstree/generator.h"
#include "workload/flash_crowd.h"
#include "workload/general.h"
#include "workload/op_mix.h"
#include "workload/scientific.h"
#include "workload/shifting.h"

namespace mdsim {
namespace {

TEST(OpMix, SampleFrequenciesMatchWeights) {
  OpMix mix = OpMix::general_purpose();
  Rng rng(1);
  std::map<OpType, int> counts;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[mix.sample(rng)];
  // stat dominates; rename/chmod rare (the property LH depends on).
  EXPECT_GT(counts[OpType::kStat], counts[OpType::kOpen]);
  EXPECT_GT(counts[OpType::kOpen], counts[OpType::kCreate]);
  EXPECT_LT(counts[OpType::kRename], kN / 50);
  EXPECT_LT(counts[OpType::kChmod], kN / 50);
  EXPECT_NEAR(counts[OpType::kStat] / static_cast<double>(kN), 0.42, 0.02);
}

TEST(OpMix, CreateHeavyFavoursCreates) {
  OpMix mix = OpMix::create_heavy();
  Rng rng(2);
  std::map<OpType, int> counts;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) ++counts[mix.sample(rng)];
  // Creates dominate every other single op type by a wide margin, and
  // creations far outnumber deletions (the namespace grows).
  for (const auto& [op, n] : counts) {
    if (op != OpType::kCreate) {
      EXPECT_GT(counts[OpType::kCreate], n);
    }
  }
  EXPECT_GT(counts[OpType::kCreate],
            3 * (counts[OpType::kUnlink] + counts[OpType::kRmdir]));
}

TEST(OpMix, ReadOnlyNeverMutates) {
  OpMix mix = OpMix::read_only();
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(op_is_update(mix.sample(rng)));
  }
}

class GeneralWorkloadTest : public ::testing::Test {
 protected:
  GeneralWorkloadTest() {
    NamespaceParams params;
    params.num_users = 8;
    params.nodes_per_user = 150;
    info = generate_namespace(tree, params);
  }
  FsTree tree;
  NamespaceInfo info;
};

TEST_F(GeneralWorkloadTest, ProducesValidOperations) {
  GeneralWorkload wl(tree, info.user_roots);
  Rng rng(7);
  for (ClientId c = 0; c < 4; ++c) {
    for (int i = 0; i < 500; ++i) {
      Operation op;
      const SimTime delay = wl.next(c, i * kMillisecond, rng, &op);
      ASSERT_NE(delay, kNever);
      ASSERT_NE(op.target, nullptr);
      EXPECT_TRUE(tree.alive(op.target));
      if (op.op == OpType::kCreate || op.op == OpType::kMkdir) {
        EXPECT_TRUE(op.target->is_dir());
        EXPECT_FALSE(op.name.empty());
      }
      if (op.op == OpType::kRename || op.op == OpType::kLink) {
        ASSERT_NE(op.secondary, nullptr);
      }
    }
  }
}

TEST_F(GeneralWorkloadTest, ExhibitsDirectoryLocality) {
  GeneralWorkload wl(tree, info.user_roots);
  Rng rng(11);
  Operation prev, cur;
  wl.next(0, 0, rng, &prev);
  int near = 0, total = 0;
  for (int i = 1; i < 2000; ++i) {
    wl.next(0, i * kMillisecond, rng, &cur);
    // "Near": same directory or parent/child relationship.
    FsNode* pd = prev.target->is_dir() ? prev.target : prev.target->parent();
    FsNode* cd = cur.target->is_dir() ? cur.target : cur.target->parent();
    if (pd == cd || pd->parent() == cd || cd->parent() == pd) ++near;
    ++total;
    prev = cur;
  }
  EXPECT_GT(static_cast<double>(near) / total, 0.5);
}

TEST_F(GeneralWorkloadTest, OpenFollowedByClose) {
  GeneralWorkload wl(tree, info.user_roots);
  Rng rng(13);
  FsNode* opened = nullptr;
  int pairs = 0, opens = 0;
  for (int i = 0; i < 5000; ++i) {
    Operation op;
    wl.next(0, i * kMillisecond, rng, &op);
    if (opened != nullptr) {
      if (op.op == OpType::kClose && op.target == opened) ++pairs;
      opened = nullptr;
    }
    if (op.op == OpType::kOpen) {
      opened = op.target;
      ++opens;
    }
  }
  ASSERT_GT(opens, 50);
  EXPECT_GT(pairs, opens * 8 / 10);  // nearly every open paired
}

TEST_F(GeneralWorkloadTest, ReaddirFollowedByStats) {
  GeneralWorkload wl(tree, info.user_roots);
  Rng rng(17);
  int readdirs = 0, stats_after = 0;
  bool in_burst = false;
  FsNode* burst_dir = nullptr;
  for (int i = 0; i < 5000; ++i) {
    Operation op;
    wl.next(0, i * kMillisecond, rng, &op);
    if (in_burst && op.op == OpType::kStat &&
        op.target->parent() == burst_dir) {
      ++stats_after;
    }
    in_burst = false;
    if (op.op == OpType::kReaddir) {
      ++readdirs;
      in_burst = true;
      burst_dir = op.target;
    }
  }
  ASSERT_GT(readdirs, 20);
  EXPECT_GT(stats_after, readdirs / 2);
}

TEST_F(GeneralWorkloadTest, ShiftMovesClientsAtTheConfiguredTime) {
  GeneralWorkload wl(tree, info.user_roots);
  WorkloadShift shift;
  shift.at = 10 * kSecond;
  shift.fraction = 1.0;  // everyone
  shift.destinations = {info.user_roots[3]};
  shift.mix = OpMix::create_heavy();
  wl.set_shift(shift);
  Rng rng(19);
  Operation op;
  wl.next(0, 0, rng, &op);
  // After the shift time, ops target the destination subtree.
  int in_dest = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    wl.next(0, 11 * kSecond + i, rng, &op);
    if (FsTree::is_ancestor_of(info.user_roots[3], op.target)) ++in_dest;
    ++total;
  }
  EXPECT_GT(static_cast<double>(in_dest) / total, 0.6);
}

TEST_F(GeneralWorkloadTest, ShiftFractionRespected) {
  GeneralWorkload wl(tree, info.user_roots);
  WorkloadShift shift;
  shift.at = 0;
  shift.fraction = 0.5;
  shift.destinations = {info.user_roots[0]};
  shift.mix = OpMix::create_heavy();
  wl.set_shift(shift);
  Rng rng(23);
  int shifted = 0;
  constexpr int kClients = 200;
  for (ClientId c = 0; c < kClients; ++c) {
    Operation op;
    wl.next(c, kSecond, rng, &op);
    const FsNode* region = wl.region_of(c);
    if (FsTree::is_ancestor_of(info.user_roots[0], region)) ++shifted;
  }
  EXPECT_NEAR(shifted, kClients / 2, kClients / 8);
}

// --- scientific -----------------------------------------------------------

TEST(ScientificWorkload, BurstsConvergeOnSharedTargets) {
  FsTree tree;
  NamespaceParams params;
  params.num_users = 2;
  params.nodes_per_user = 30;
  params.num_projects = 1;
  params.project_runs = 2;
  params.project_dir_files = 50;
  NamespaceInfo info = generate_namespace(tree, params);
  std::vector<FsNode*> runs;
  for (const auto& [_, c] : info.project_roots[0]->children()) {
    runs.push_back(c.get());
  }
  ScientificWorkload wl(tree, runs);
  Rng rng(29);
  // First op of burst 0 for every client must hit the same file or dir.
  std::set<const FsNode*> first_targets;
  for (ClientId c = 0; c < 32; ++c) {
    Operation op;
    wl.next(c, 0, rng, &op);
    const FsNode* t = op.target->is_dir() ? op.target : op.target;
    first_targets.insert(t);
  }
  EXPECT_EQ(first_targets.size(), 1u);
}

TEST(ScientificWorkload, CheckpointStormCreatesDistinctFiles) {
  FsTree tree;
  NamespaceParams params;
  params.num_users = 2;
  params.nodes_per_user = 30;
  params.num_projects = 1;
  NamespaceInfo info = generate_namespace(tree, params);
  std::vector<FsNode*> runs;
  for (const auto& [_, c] : info.project_roots[0]->children()) {
    runs.push_back(c.get());
  }
  ScientificWorkloadParams sp;
  sp.n_to_1_fraction = 0.0;  // all bursts are N-to-N create storms
  ScientificWorkload wl(tree, runs, sp);
  Rng rng(31);
  std::set<std::string> names;
  for (ClientId c = 0; c < 16; ++c) {
    Operation op;
    wl.next(c, 0, rng, &op);
    EXPECT_EQ(op.op, OpType::kCreate);
    EXPECT_TRUE(op.target->is_dir());
    EXPECT_TRUE(names.insert(op.name).second) << "duplicate " << op.name;
  }
}

// --- flash crowd -------------------------------------------------------

TEST(FlashCrowd, IdleUntilStartThenTightLoop) {
  FsTree tree;
  FsNode* d = tree.mkdir(tree.root(), "d");
  FsNode* f = tree.create_file(d, "hot");
  FlashCrowdParams params;
  params.start = 8 * kSecond;
  params.duration = 200 * kMillisecond;
  params.think = kMillisecond;
  params.skew = kMillisecond;
  FlashCrowdWorkload wl(tree, f, params);
  Rng rng(37);

  Operation op;
  // Before the start: the delay lands us at/after the start line.
  const SimTime d0 = wl.next(0, 0, rng, &op);
  EXPECT_GE(d0, 8 * kSecond);
  EXPECT_LE(d0, 8 * kSecond + params.skew);
  EXPECT_EQ(op.op, OpType::kOpen);
  EXPECT_EQ(op.target, f);

  // During the crowd: tight loop on the same file.
  const SimTime d1 = wl.next(0, 8 * kSecond + kMillisecond, rng, &op);
  EXPECT_LT(d1, 50 * kMillisecond);
  EXPECT_EQ(op.target, f);

  // After the window: done.
  EXPECT_EQ(wl.next(0, 9 * kSecond, rng, &op), kNever);
}

TEST(FlashCrowd, StopsWhenTargetDeleted) {
  FsTree tree;
  FsNode* d = tree.mkdir(tree.root(), "d");
  FsNode* f = tree.create_file(d, "hot");
  FlashCrowdWorkload wl(tree, f);
  ASSERT_TRUE(tree.remove(f));
  Operation op;
  Rng rng(41);
  EXPECT_EQ(wl.next(0, 0, rng, &op), kNever);
}

}  // namespace
}  // namespace mdsim

#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--filter REGEX]
                           [--min-ratio R]

Prints a per-benchmark table of old/new time and the speedup ratio
(old_time / new_time, so >1 means NEW is faster). When a file contains
repetition aggregates, the `_mean` rows are used and raw repetitions are
ignored; otherwise the plain rows are used. Benchmarks present in only
one file are listed separately.

With --min-ratio, exits non-zero if any compared benchmark's speedup
falls below R — usable as a CI regression gate.
"""

import argparse
import json
import re
import sys


def load_benchmarks(path):
    """Return {name: benchmark-dict}, preferring `_mean` aggregates."""
    with open(path) as f:
        data = json.load(f)
    rows = data.get("benchmarks", [])
    means = {}
    plain = {}
    for b in rows:
        name = b.get("name", "")
        run_type = b.get("run_type", "iteration")
        if run_type == "aggregate":
            if b.get("aggregate_name") == "mean":
                means[name.removesuffix("_mean")] = b
        else:
            plain[name] = b
    # Aggregates win: if a benchmark was run with repetitions, its raw
    # repetition rows describe single reps, not the summary.
    merged = dict(plain)
    merged.update(means)
    return merged


def fmt_time(b):
    return f"{b['real_time']:.1f} {b.get('time_unit', 'ns')}"


def fmt_rate(b):
    # The sim_scale ladder emits simulated-ops-per-wall-second alongside
    # the google-benchmark items_per_second (which counts engine events);
    # ops/s is the ladder's figure of merit, so prefer it when present.
    ops = b.get("ops_per_wall_sec")
    if ops:
        return f"{ops / 1e3:.0f}k ops/s"
    ips = b.get("items_per_second")
    return f"{ips / 1e6:.2f}M/s" if ips else "-"


def fmt_scale(b):
    """Rung shape for ladder rows: clients/threads, blank otherwise."""
    if "clients" not in b:
        return ""
    return f"  [{b['clients']} clients, t{b.get('threads', 1)}]"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline benchmark JSON")
    ap.add_argument("new", help="candidate benchmark JSON")
    ap.add_argument("--filter", default="", metavar="REGEX",
                    help="only compare benchmarks matching REGEX")
    ap.add_argument("--min-ratio", type=float, default=None, metavar="R",
                    help="fail (exit 1) if any speedup ratio is below R")
    args = ap.parse_args()

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)
    if args.filter:
        rx = re.compile(args.filter)
        old = {k: v for k, v in old.items() if rx.search(k)}
        new = {k: v for k, v in new.items() if rx.search(k)}

    common = [n for n in old if n in new]
    if not common:
        print("no common benchmarks to compare", file=sys.stderr)
        return 1

    name_w = max(len(n) for n in common)
    header = (f"{'benchmark':<{name_w}}  {'old':>12}  {'new':>12}  "
              f"{'speedup':>8}  {'old rate':>10}  {'new rate':>10}")
    print(header)
    print("-" * len(header))

    worst = None
    for name in common:
        ob, nb = old[name], new[name]
        if ob.get("time_unit", "ns") != nb.get("time_unit", "ns"):
            print(f"{name:<{name_w}}  (mismatched time units, skipped)")
            continue
        ratio = ob["real_time"] / nb["real_time"] if nb["real_time"] else 0.0
        worst = ratio if worst is None else min(worst, ratio)
        print(f"{name:<{name_w}}  {fmt_time(ob):>12}  {fmt_time(nb):>12}  "
              f"{ratio:>7.2f}x  {fmt_rate(ob):>10}  {fmt_rate(nb):>10}"
              f"{fmt_scale(nb)}")

    for name in sorted(set(old) - set(new)):
        print(f"{name:<{name_w}}  only in {args.old}")
    for name in sorted(set(new) - set(old)):
        print(f"{name:<{name_w}}  only in {args.new}")

    if args.min_ratio is not None and worst is not None:
        if worst < args.min_ratio:
            print(f"\nFAIL: worst speedup {worst:.2f}x is below "
                  f"--min-ratio {args.min_ratio}", file=sys.stderr)
            return 1
        print(f"\nOK: worst speedup {worst:.2f}x >= {args.min_ratio}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Render the paper-reproduction figures from bench_results/*.csv.

Usage:
    python3 tools/plot_figures.py [results_dir] [output_dir]

Requires matplotlib. Each figure mirrors the layout of its counterpart in
Weil et al., SC 2004 (figures 2-7); ablations get simple bar/line charts.
Missing CSVs are skipped, so partial bench runs still plot.
"""
import csv
import os
import sys
from collections import defaultdict

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")

RESULTS = sys.argv[1] if len(sys.argv) > 1 else "bench_results"
OUT = sys.argv[2] if len(sys.argv) > 2 else "bench_results/plots"

STRATEGY_STYLE = {
    "StaticSubtree": dict(color="#1f77b4", marker="o"),
    "DynamicSubtree": dict(color="#d62728", marker="s"),
    "DirHash": dict(color="#2ca02c", marker="^"),
    "FileHash": dict(color="#9467bd", marker="v"),
    "LazyHybrid": dict(color="#ff7f0e", marker="x"),
}


def rows(name):
    path = os.path.join(RESULTS, name + ".csv")
    if not os.path.exists(path):
        print(f"  (skipping {name}: no CSV)")
        return None
    with open(path) as fh:
        return list(csv.DictReader(fh))


def save(fig, name):
    os.makedirs(OUT, exist_ok=True)
    path = os.path.join(OUT, name + ".png")
    fig.savefig(path, dpi=130, bbox_inches="tight")
    plt.close(fig)
    print(f"  wrote {path}")


def by_strategy(data, xkey, ykey, scale=1.0):
    series = defaultdict(list)
    for r in data:
        series[r["strategy"]].append((float(r[xkey]), float(r[ykey]) * scale))
    return series


def plot_fig2():
    data = rows("fig2_scaling")
    if not data:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    for strat, pts in by_strategy(data, "num_mds",
                                  "avg_mds_throughput_ops").items():
        pts.sort()
        ax.plot(*zip(*pts), label=strat, **STRATEGY_STYLE.get(strat, {}))
    ax.set_xlabel("MDS cluster size")
    ax.set_ylabel("Average MDS throughput (ops/sec)")
    ax.set_title("Figure 2: performance as the system scales")
    ax.legend()
    ax.grid(alpha=0.3)
    save(fig, "fig2_scaling")


def plot_fig3():
    data = rows("fig3_prefix_cache")
    if not data:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    for strat, pts in by_strategy(data, "num_mds",
                                  "prefix_fraction_pct").items():
        pts.sort()
        ax.plot(*zip(*pts), label=strat, **STRATEGY_STYLE.get(strat, {}))
    ax.set_xlabel("MDS servers")
    ax.set_ylabel("Cache consumed by prefixes (%)")
    ax.set_title("Figure 3: prefix-inode cache overhead")
    ax.legend()
    ax.grid(alpha=0.3)
    save(fig, "fig3_prefix_cache")


def plot_fig4():
    data = rows("fig4_cache_hit")
    if not data:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    for strat, pts in by_strategy(data, "cache_fraction", "hit_rate").items():
        pts.sort()
        ax.plot(*zip(*pts), label=strat, **STRATEGY_STYLE.get(strat, {}))
    ax.set_xlabel("Cache size relative to total metadata size")
    ax.set_ylabel("Cache hit rate")
    ax.set_title("Figure 4: hit rate vs cache size")
    ax.legend()
    ax.grid(alpha=0.3)
    save(fig, "fig4_cache_hit")


def plot_fig5():
    data = rows("fig5_adaptation")
    if not data:
        return
    fig, axes = plt.subplots(1, 2, figsize=(11, 4), sharey=True)
    for ax, strat in zip(axes, ["DynamicSubtree", "StaticSubtree"]):
        pts = [r for r in data if r["strategy"] == strat]
        t = [float(r["time_s"]) for r in pts]
        ax.fill_between(t, [float(r["min_tput"]) for r in pts],
                        [float(r["max_tput"]) for r in pts], alpha=0.25,
                        label="min..max")
        ax.plot(t, [float(r["avg_tput"]) for r in pts], label="average",
                color="#d62728")
        ax.set_title(strat)
        ax.set_xlabel("Time (s)")
        ax.grid(alpha=0.3)
        ax.legend()
    axes[0].set_ylabel("MDS throughput (ops/sec)")
    fig.suptitle("Figure 5: throughput range under a workload shift")
    save(fig, "fig5_adaptation")


def plot_fig6():
    data = rows("fig6_forwarding")
    if not data:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    for strat in ["DynamicSubtree", "StaticSubtree"]:
        pts = [(float(r["time_s"]), float(r["forward_fraction"]))
               for r in data if r["strategy"] == strat]
        pts.sort()
        ax.plot(*zip(*pts), label=strat, **STRATEGY_STYLE.get(strat, {}))
    ax.set_xlabel("Time (s)")
    ax.set_ylabel("Portion of requests forwarded")
    ax.set_title("Figure 6: forwarding under a workload shift")
    ax.legend()
    ax.grid(alpha=0.3)
    save(fig, "fig6_forwarding")


def plot_fig7():
    data = rows("fig7_flash_crowd")
    if not data:
        return
    fig, axes = plt.subplots(2, 1, figsize=(7, 6), sharex=True, sharey=True)
    for ax, mode, title in zip(
            axes, ["no_control", "traffic_control"],
            ["No traffic control", "Traffic control"]):
        pts = [r for r in data if r["mode"] == mode]
        t = [float(r["time_s"]) for r in pts]
        ax.plot(t, [float(r["replies_per_s"]) for r in pts],
                label="Replies", color="#1f77b4")
        ax.plot(t, [float(r["forwards_per_s"]) for r in pts],
                label="Forwards", color="#d62728", linestyle="--")
        ax.set_title(title)
        ax.set_ylabel("Requests/sec")
        ax.grid(alpha=0.3)
        ax.legend()
    axes[1].set_xlabel("Time (s)")
    fig.suptitle("Figure 7: flash crowd (10k clients, one file)")
    save(fig, "fig7_flash_crowd")


def main():
    print(f"Plotting from {RESULTS}/ into {OUT}/")
    plot_fig2()
    plot_fig3()
    plot_fig4()
    plot_fig5()
    plot_fig6()
    plot_fig7()
    print("done")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Inspect the per-request trace CSVs emitted by bench/latency_breakdown.

Usage:
    tools/trace_top.py [results_dir] [--top N] [--op OP]

Reads latency_breakdown.csv (per-op x per-stage aggregates) and
latency_slowest.csv (slowest-N requests with full per-stage attribution)
from results_dir (default: bench_results) and prints:

  1. the cluster-wide stage ranking — where the time goes overall,
  2. a per-op dominant-stage table,
  3. the slowest requests, each with its top three stages.

Stdlib only; no third-party dependencies.
"""

import argparse
import csv
import os
import sys


def read_rows(path):
    if not os.path.exists(path):
        sys.exit(f"missing {path} — run bench/latency_breakdown first")
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def fmt_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def stage_ranking(breakdown):
    """Cluster-wide attributed time per stage, descending."""
    totals = {}
    grand = 0.0
    for r in breakdown:
        ms = float(r["total_ms"])
        if r["stage"] == "total":
            grand += ms
        else:
            totals[r["stage"]] = totals.get(r["stage"], 0.0) + ms
    rows = []
    for stage, ms in sorted(totals.items(), key=lambda kv: -kv[1]):
        share = ms / grand if grand > 0 else 0.0
        rows.append([stage, f"{ms / 1000.0:.3f}", f"{share:6.1%}"])
    return fmt_table(["stage", "total_s", "share"], rows)


def per_op_table(breakdown, op_filter):
    rows = []
    ops = {}
    for r in breakdown:
        ops.setdefault(r["op"], []).append(r)
    for op, group in ops.items():
        if op_filter and op != op_filter:
            continue
        total = next(r for r in group if r["stage"] == "total")
        stages = [r for r in group if r["stage"] != "total"]
        top = max(stages, key=lambda r: float(r["total_ms"]))
        rows.append([
            op,
            total["count"],
            f"{float(total['total_ms']) / float(total['count']):.3f}",
            f"{float(total['p99_ms']):.3f}",
            top["stage"],
            f"{float(top['share']):6.1%}",
        ])
    rows.sort(key=lambda r: -float(r[1]))
    return fmt_table(
        ["op", "count", "mean_ms", "p99_ms", "top_stage", "top_share"], rows)


def slowest_table(slowest, top_n, op_filter):
    stage_cols = [c for c in (slowest[0].keys() if slowest else [])
                  if c.endswith("_ms") and c != "total_ms"]
    rows = []
    for r in slowest:
        if op_filter and r["op"] != op_filter:
            continue
        stages = sorted(((c[:-3], float(r[c])) for c in stage_cols),
                        key=lambda kv: -kv[1])
        top3 = ", ".join(f"{name} {ms:.2f}ms"
                         for name, ms in stages[:3] if ms > 0)
        rows.append([
            r["rank"], r["op"], r["client"], f"{float(r['start_s']):.3f}",
            f"{float(r['total_ms']):.3f}", r["hops"], r["retries"], top3,
        ])
        if len(rows) >= top_n:
            break
    return fmt_table(
        ["rank", "op", "client", "start_s", "total_ms", "hops", "retries",
         "top stages"], rows)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("results_dir", nargs="?", default="bench_results")
    ap.add_argument("--top", type=int, default=10,
                    help="how many slow requests to show (default 10)")
    ap.add_argument("--op", default=None,
                    help="restrict to one op type (e.g. readdir)")
    args = ap.parse_args()

    breakdown = read_rows(os.path.join(args.results_dir,
                                       "latency_breakdown.csv"))
    slowest = read_rows(os.path.join(args.results_dir,
                                     "latency_slowest.csv"))

    print("== Attributed time by stage (all ops) ==")
    print(stage_ranking(breakdown))
    print("\n== Per-op summary ==")
    print(per_op_table(breakdown, args.op))
    print(f"\n== Slowest requests (top {args.top}) ==")
    print(slowest_table(slowest, args.top, args.op))


if __name__ == "__main__":
    main()
